//! Loopback/LAN TCP transport and the per-process node runtime behind the
//! `wbamd` deployment binary.
//!
//! Every peer pair is connected by two *simplex* TCP connections, one per
//! direction: a process dials each peer it sends to and uses that connection
//! only for writing, and accepts incoming connections only for reading. This
//! keeps connection management trivial (no simultaneous-open deduplication)
//! at the cost of one extra socket per pair — irrelevant at the cluster sizes
//! atomic multicast targets.
//!
//! All of a process's network IO is driven by **one nonblocking poller
//! thread** (see `WIRE.md` and DESIGN.md): it accepts inbound connections,
//! drains readable sockets, dials peers with exponential backoff, and flushes
//! per-peer output buffers with coalesced writes — a whole burst of frames
//! queued by the node thread goes out in one `write` call, so protocol
//! batches stay batched on the socket. The node thread hands frames to the
//! poller through a single command channel; the poller parks in a short
//! `recv_timeout` on that channel when idle (sends wake it instantly, the
//! wait adaptively backs off when the process is quiet), so nothing ever
//! busy-spins. This replaces the earlier two-OS-threads-per-peer design: a
//! six-replica deployment now runs two threads per process (node + poller)
//! instead of ten or more.
//!
//! Framing is `wbam_types::wire`: each connection opens with the 4-byte
//! preamble (`"WB"` magic, wire version, codec byte) and a `Hello` frame
//! identifying the dialling process, then carries length-prefixed protocol
//! frames encoded with the negotiated [`WireCodec`] — compact binary by
//! default, JSON behind the `wbamd --wire json` compatibility flag. A peer
//! whose preamble disagrees (wrong codec, wrong version, not a WBAM process
//! at all) is rejected immediately with a clear error on stderr, so a
//! mixed-codec cluster fails fast instead of surfacing as garbled frames.
//!
//! Connection loss follows the fair-lossy link model the protocols are
//! designed for: bytes in flight die with the connection, frames queued while
//! a peer is down are capped and flushed after the reconnect (with backoff),
//! and the protocols' retry timers recover whatever was lost — so a restarted
//! peer process rejoins exactly like the simulator's `Event::Restart` path.
//!
//! # Example
//!
//! Spawn a 1-group × 1-replica "cluster" plus a client, each on its own TCP
//! endpoint (in production each [`TcpNode`] lives in its own OS process):
//!
//! ```
//! use std::collections::BTreeMap;
//! use std::time::Duration;
//! use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxReplica};
//! use wbam_runtime::TcpNode;
//! use wbam_types::{AppMessage, ClusterConfig, Destination, GroupId, MsgId, Payload, ProcessId};
//!
//! let cluster = ClusterConfig::builder().groups(1, 1).clients(1).build();
//! let replica = cluster.groups()[0].members()[0];
//! let client = cluster.clients()[0];
//! // Reserve two loopback ports for the example.
//! let mut addrs = BTreeMap::new();
//! for p in [replica, client] {
//!     let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//!     addrs.insert(p, l.local_addr().unwrap());
//! }
//! let r = TcpNode::spawn(
//!     Box::new(WhiteBoxReplica::new(
//!         ReplicaConfig::new(replica, GroupId(0), cluster.clone()).without_auto_election(),
//!     )),
//!     &addrs,
//!     false,
//! )
//! .unwrap();
//! let c = TcpNode::spawn(
//!     Box::new(MulticastClient::new(ClientConfig::new(client, cluster.clone()))),
//!     &addrs,
//!     false,
//! )
//! .unwrap();
//! c.submit(AppMessage::new(
//!     MsgId::new(client, 0),
//!     Destination::single(GroupId(0)),
//!     Payload::from("over tcp"),
//! ))
//! .unwrap();
//! // One replica delivery + one client completion.
//! assert!(r.wait_for_total(1, Duration::from_secs(10)));
//! assert!(c.wait_for_total(1, Duration::from_secs(10)));
//! r.shutdown();
//! c.shutdown();
//! ```

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use wbam_types::wire::{
    check_preamble, decode_frame_slice, encode_frame_with, encode_preamble, WireCodec, PREAMBLE_LEN,
};
use wbam_types::{AppMessage, ProcessId, WbamError};

use crate::node_loop::{run_node, Envelope};
use crate::transport::Transport;
use crate::{BoxedNode, DeliveryLog, RuntimeDelivery};

/// First re-dial delay after a failed or lost connection.
const BACKOFF_INITIAL: Duration = Duration::from_millis(10);
/// Backoff cap: the poller re-dials a down peer at least this often.
const BACKOFF_MAX: Duration = Duration::from_millis(500);
/// Upper bound on one (blocking) dial attempt from the poller thread.
/// Loopback dials resolve instantly (connect or refuse); this only matters on
/// a real LAN with an unreachable peer.
const DIAL_TIMEOUT: Duration = Duration::from_millis(250);
/// Shortest idle wait of the poller between iterations. The wait runs on the
/// command channel, so outbound sends cut it short instantly; it exists to
/// yield the core to the node thread instead of spinning.
const IDLE_MIN: Duration = Duration::from_micros(50);
/// Longest idle wait once the process has been quiet for a while; also
/// bounds how stale the shutdown flag can get.
const IDLE_MAX: Duration = Duration::from_millis(50);
/// How long after the last socket/channel activity the poller keeps its
/// wait at [`IDLE_MIN`] before backing off exponentially toward [`IDLE_MAX`].
const HOT_WINDOW: Duration = Duration::from_millis(5);
/// Cap on a peer's output buffer. When it is full, new frames are dropped
/// (fair-lossy: the protocols' retry timers recover) — this bounds memory
/// while a peer is down without ever cutting a queued frame in half.
const OUTBUF_CAP: usize = 8 * 1024 * 1024;
/// Read granularity of the poller.
const READ_CHUNK: usize = 64 * 1024;

/// What travels inside a TCP frame: a connection handshake or a protocol
/// message, encoded with the connection's negotiated [`WireCodec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum WireFrame<M> {
    /// First frame of every connection (right after the preamble): identifies
    /// the dialling process, so the accepting side can tag subsequent frames
    /// with their sender.
    Hello {
        /// The dialling process.
        from: ProcessId,
    },
    /// A protocol message.
    Protocol(M),
}

/// A batch of already-encoded frames from the node thread to the poller.
pub(crate) enum PollerCmd {
    /// Frames to append to the named peers' output buffers, in order.
    Frames(Vec<(ProcessId, Bytes)>),
    /// Stop the poller and drop all connections.
    Shutdown,
}

/// TCP transport: encodes messages into wire frames on the node thread and
/// hands them — a whole protocol step per handoff — to the process's poller
/// thread, which owns every socket. Messages a node sends to *itself* (a
/// leader is a member of its own group and ACCEPTs to every member)
/// short-circuit into the local envelope channel instead of crossing the
/// network stack.
pub struct TcpTransport<M> {
    local: ProcessId,
    codec: WireCodec,
    loopback: Sender<Envelope<M>>,
    cmd_tx: Sender<PollerCmd>,
    peers: HashSet<ProcessId>,
}

impl<M: Serialize + DeserializeOwned + Send + 'static> TcpTransport<M> {
    /// Creates the transport used by `local` to reach every other process in
    /// `addrs` and spawns the poller thread that owns `listener` and all
    /// peer connections. Returns the transport, a command handle for
    /// shutdown, and the poller's join handle.
    pub(crate) fn new(
        local: ProcessId,
        codec: WireCodec,
        listener: TcpListener,
        loopback: Sender<Envelope<M>>,
        addrs: &BTreeMap<ProcessId, SocketAddr>,
        shutdown: Arc<AtomicBool>,
    ) -> (Self, Sender<PollerCmd>, JoinHandle<()>) {
        let (cmd_tx, cmd_rx) = unbounded();
        // Preamble + Hello, sent as the first bytes of every outbound
        // connection. Encoded once here (where `M: Serialize` is in scope);
        // the poller itself only needs to decode.
        let mut hello = encode_preamble(codec).to_vec();
        let hello_frame = encode_frame_with(codec, &WireFrame::<M>::Hello { from: local })
            .expect("Hello frame serialisation cannot fail");
        hello.extend_from_slice(&hello_frame);

        let peer_addrs: Vec<(ProcessId, SocketAddr)> = addrs
            .iter()
            .filter(|(&p, _)| p != local)
            .map(|(&p, &a)| (p, a))
            .collect();
        let peers = peer_addrs.iter().map(|&(p, _)| p).collect();
        let env_tx = loopback.clone();
        let handle = std::thread::spawn(move || {
            poller_loop::<M>(codec, listener, peer_addrs, hello, cmd_rx, env_tx, shutdown);
        });
        (
            TcpTransport {
                local,
                codec,
                loopback,
                cmd_tx: cmd_tx.clone(),
                peers,
            },
            cmd_tx,
            handle,
        )
    }

    fn encode(&self, msg: M) -> Option<Bytes> {
        // An unencodable message (e.g. over MAX_FRAME_LEN) is dropped: it
        // could never reach the peer, and retrying cannot help.
        encode_frame_with(self.codec, &WireFrame::Protocol(msg)).ok()
    }
}

impl<M: Serialize + DeserializeOwned + Send + 'static> Transport<M> for TcpTransport<M> {
    fn send(&self, to: ProcessId, msg: M) {
        self.send_many(vec![(to, msg)]);
    }

    fn send_many(&self, msgs: Vec<(ProcessId, M)>) {
        let mut frames = Vec::with_capacity(msgs.len());
        for (to, msg) in msgs {
            if to == self.local {
                let _ = self.loopback.send(Envelope::FromPeer {
                    from: self.local,
                    msg,
                });
            } else if self.peers.contains(&to) {
                if let Some(frame) = self.encode(msg) {
                    frames.push((to, frame));
                }
            }
        }
        if !frames.is_empty() {
            let _ = self.cmd_tx.send(PollerCmd::Frames(frames));
        }
    }
}

/// Outbound state for one peer, owned by the poller: the (re)dialled
/// connection and the coalescing output buffer.
struct PeerOut {
    addr: SocketAddr,
    conn: Option<TcpStream>,
    /// Queued wire bytes; `offset..` is the unsent suffix. Always cut at
    /// frame boundaries when no connection is up.
    outbuf: Vec<u8>,
    offset: usize,
    next_dial: Instant,
    backoff: Duration,
}

impl PeerOut {
    fn new(addr: SocketAddr, now: Instant) -> Self {
        PeerOut {
            addr,
            conn: None,
            outbuf: Vec::new(),
            offset: 0,
            next_dial: now,
            backoff: BACKOFF_INITIAL,
        }
    }

    fn queued(&self) -> usize {
        self.outbuf.len() - self.offset
    }

    /// Appends one frame, dropping it when the buffer is full (fair-lossy —
    /// dropping the *new* frame, never truncating the buffer, keeps the byte
    /// stream cut at frame boundaries even mid-flush).
    fn queue(&mut self, frame: &[u8]) {
        if self.queued() + frame.len() > OUTBUF_CAP {
            return;
        }
        self.outbuf.extend_from_slice(frame);
    }

    /// Drops the connection and everything queued behind it: a partial frame
    /// cannot be resumed on a fresh connection, and the fair-lossy model says
    /// the protocols re-drive whatever mattered.
    fn disconnect(&mut self, now: Instant) {
        self.conn = None;
        self.outbuf.clear();
        self.offset = 0;
        self.next_dial = now + BACKOFF_INITIAL;
        self.backoff = (BACKOFF_INITIAL * 2).min(BACKOFF_MAX);
    }
}

/// Inbound state for one accepted connection.
struct InConn {
    stream: TcpStream,
    /// Peer address, for error messages only.
    desc: String,
    buf: Vec<u8>,
    preamble_ok: bool,
    from: Option<ProcessId>,
}

/// The single IO thread of a [`TcpNode`] process: accepts, reads, dials and
/// writes every socket, nonblocking throughout. See the module docs for the
/// scheduling discipline.
fn poller_loop<M: DeserializeOwned + Send + 'static>(
    codec: WireCodec,
    listener: TcpListener,
    peer_addrs: Vec<(ProcessId, SocketAddr)>,
    hello: Vec<u8>,
    cmd_rx: Receiver<PollerCmd>,
    env_tx: Sender<Envelope<M>>,
    shutdown: Arc<AtomicBool>,
) {
    let start = Instant::now();
    let mut peers: HashMap<ProcessId, PeerOut> = peer_addrs
        .into_iter()
        .map(|(p, a)| (p, PeerOut::new(a, start)))
        .collect();
    let mut inbound: Vec<InConn> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut idle = IDLE_MIN;
    let mut last_progress = Instant::now();

    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let mut progress = false;

        // 1. Drain queued commands from the node thread.
        loop {
            match cmd_rx.try_recv() {
                Ok(PollerCmd::Frames(frames)) => {
                    progress = true;
                    for (to, frame) in frames {
                        if let Some(peer) = peers.get_mut(&to) {
                            peer.queue(&frame);
                        }
                    }
                }
                Ok(PollerCmd::Shutdown) | Err(TryRecvError::Disconnected) => return,
                Err(TryRecvError::Empty) => break,
            }
        }

        // 2. Accept new inbound connections.
        loop {
            match listener.accept() {
                Ok((stream, addr)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    inbound.push(InConn {
                        stream,
                        desc: addr.to_string(),
                        buf: Vec::new(),
                        preamble_ok: false,
                        from: None,
                    });
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break, // transient accept error; retry next iteration
            }
        }

        // 3. Read and decode from every inbound connection.
        inbound.retain_mut(|conn| service_inbound(conn, codec, &env_tx, &mut chunk, &mut progress));

        // 4. Dial due peers and flush their output buffers.
        let now = Instant::now();
        for peer in peers.values_mut() {
            service_peer(peer, &hello, now, &mut progress);
        }

        // 5. Park on the command channel: a send from the node thread wakes
        // the poller instantly; otherwise the wait stays minimal while there
        // has been recent activity and backs off exponentially when the
        // process is quiet. Never a busy spin — on a single-core box the
        // node thread needs the CPU more than the poller needs another lap.
        if progress {
            last_progress = Instant::now();
            idle = IDLE_MIN;
        } else if last_progress.elapsed() > HOT_WINDOW {
            idle = (idle * 2).min(IDLE_MAX);
        }
        match cmd_rx.recv_timeout(idle) {
            Ok(PollerCmd::Frames(frames)) => {
                last_progress = Instant::now();
                idle = IDLE_MIN;
                for (to, frame) in frames {
                    if let Some(peer) = peers.get_mut(&to) {
                        peer.queue(&frame);
                    }
                }
            }
            Ok(PollerCmd::Shutdown) => return,
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Drains one inbound connection: reads until `WouldBlock`, then decodes
/// every complete frame with a cursor and compacts the buffer once. Returns
/// `false` when the connection should be dropped (EOF, IO error, bad
/// preamble, undecodable frame — a corrupt length prefix cannot be resynced
/// from; the peer's poller re-dials).
fn service_inbound<M: DeserializeOwned>(
    conn: &mut InConn,
    codec: WireCodec,
    env_tx: &Sender<Envelope<M>>,
    chunk: &mut [u8],
    progress: &mut bool,
) -> bool {
    loop {
        match conn.stream.read(chunk) {
            Ok(0) => return false,
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                *progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    let mut pos = 0usize;
    if !conn.preamble_ok {
        if conn.buf.len() < PREAMBLE_LEN {
            return true; // need more bytes
        }
        let mut preamble = [0u8; PREAMBLE_LEN];
        preamble.copy_from_slice(&conn.buf[..PREAMBLE_LEN]);
        if let Err(e) = check_preamble(&preamble, codec) {
            eprintln!("wbam-runtime: rejecting connection from {}: {e}", conn.desc);
            return false;
        }
        conn.preamble_ok = true;
        pos = PREAMBLE_LEN;
    }
    loop {
        match decode_frame_slice::<WireFrame<M>>(codec, &conn.buf[pos..]) {
            Ok(Some((WireFrame::Hello { from }, used))) => {
                conn.from = Some(from);
                pos += used;
            }
            Ok(Some((WireFrame::Protocol(msg), used))) => {
                pos += used;
                let Some(from) = conn.from else {
                    eprintln!(
                        "wbam-runtime: dropping connection from {}: protocol frame before Hello",
                        conn.desc
                    );
                    return false;
                };
                if env_tx.send(Envelope::FromPeer { from, msg }).is_err() {
                    return false; // node thread gone
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("wbam-runtime: dropping connection from {}: {e}", conn.desc);
                return false;
            }
        }
    }
    if pos > 0 {
        conn.buf.drain(..pos);
    }
    true
}

/// Dials a peer if due and flushes its output buffer with coalesced writes:
/// everything queued goes to the kernel in as few `write` calls as the
/// socket buffer allows.
fn service_peer(peer: &mut PeerOut, hello: &[u8], now: Instant, progress: &mut bool) {
    if peer.conn.is_none() {
        // Dial lazily: only a peer we have bytes for is worth a connection.
        if peer.queued() == 0 || now < peer.next_dial {
            return;
        }
        match TcpStream::connect_timeout(&peer.addr, DIAL_TIMEOUT) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(true);
                // The fresh connection starts with preamble + Hello, then
                // whatever queued up while the peer was down.
                let mut buf = Vec::with_capacity(hello.len() + peer.queued());
                buf.extend_from_slice(hello);
                buf.extend_from_slice(&peer.outbuf[peer.offset..]);
                peer.outbuf = buf;
                peer.offset = 0;
                peer.conn = Some(stream);
                peer.backoff = BACKOFF_INITIAL;
                *progress = true;
            }
            Err(_) => {
                peer.next_dial = now + peer.backoff;
                peer.backoff = (peer.backoff * 2).min(BACKOFF_MAX);
                return;
            }
        }
    }
    let stream = peer.conn.as_mut().expect("connected above");
    while peer.offset < peer.outbuf.len() {
        match stream.write(&peer.outbuf[peer.offset..]) {
            Ok(0) => {
                peer.disconnect(now);
                return;
            }
            Ok(n) => {
                peer.offset += n;
                *progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break, // socket buffer full
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                peer.disconnect(now);
                return;
            }
        }
    }
    if peer.offset == peer.outbuf.len() {
        peer.outbuf.clear();
        peer.offset = 0;
    } else if peer.offset > READ_CHUNK {
        peer.outbuf.drain(..peer.offset);
        peer.offset = 0;
    }
}

/// One protocol node running over real TCP: the per-process runtime behind
/// the `wbamd` deployment binary (one OS process = one [`TcpNode`]).
///
/// The node runs the same event loop as [`InProcessCluster`](crate::InProcessCluster)
/// — only the transport differs — so a protocol that is correct under the
/// simulator and the in-process runtime behaves identically here.
pub struct TcpNode<M> {
    id: ProcessId,
    env_tx: Sender<Envelope<M>>,
    cmd_tx: Sender<PollerCmd>,
    deliveries: Arc<DeliveryLog>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    started: Instant,
}

impl<M: Serialize + DeserializeOwned + Send + 'static> TcpNode<M> {
    /// Spawns the node with the default wire codec ([`WireCodec::Binary`]);
    /// see [`Self::spawn_with_codec`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::spawn_with_codec`].
    pub fn spawn(
        node: BoxedNode<M>,
        addrs: &BTreeMap<ProcessId, SocketAddr>,
        restart: bool,
    ) -> Result<Self, WbamError> {
        Self::spawn_with_codec(node, addrs, restart, WireCodec::default())
    }

    /// Binds `addrs[node.id()]`, spawns the poller thread and the node
    /// thread, and starts the node with `Event::Init`. All connections use
    /// `codec` for their frame bodies; the preamble handshake rejects peers
    /// running a different codec (or wire version) with a clear error.
    ///
    /// With `restart = true` the node additionally receives `Event::Restart`
    /// before any peer traffic — the flag a redeployed `wbamd` process passes
    /// so the replica rejoins its group (fresh ballot via the `NEW_LEADER`
    /// handshake, state re-synchronised from a quorum) exactly like the
    /// simulator's restart path.
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::UnknownProcess`] when `addrs` has no entry for
    /// the node, or [`WbamError::Io`] when binding its listen address fails.
    pub fn spawn_with_codec(
        node: BoxedNode<M>,
        addrs: &BTreeMap<ProcessId, SocketAddr>,
        restart: bool,
        codec: WireCodec,
    ) -> Result<Self, WbamError> {
        let id = node.id();
        let listen = *addrs.get(&id).ok_or(WbamError::UnknownProcess(id))?;
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;

        let started = Instant::now();
        let deliveries = Arc::new(DeliveryLog::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (env_tx, env_rx) = unbounded();
        let mut threads = Vec::new();

        if restart {
            // Enqueued before the poller thread exists, so the node is
            // guaranteed to process Event::Init then Event::Restart before
            // any peer traffic (connections parked in the kernel backlog are
            // only read once the poller starts accepting).
            let _ = env_tx.send(Envelope::Restart);
        }
        let (transport, cmd_tx, poller) = TcpTransport::new(
            id,
            codec,
            listener,
            env_tx.clone(),
            addrs,
            Arc::clone(&shutdown),
        );
        threads.push(poller);
        {
            let deliveries = Arc::clone(&deliveries);
            threads.push(std::thread::spawn(move || {
                run_node(node, env_rx, transport, deliveries, started);
            }));
        }
        Ok(TcpNode {
            id,
            env_tx,
            cmd_tx,
            deliveries,
            shutdown,
            threads,
            started,
        })
    }

    /// The process this node plays.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Submits an application message for multicast at this node (normally a
    /// client node).
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::NotReady`] when the node thread has exited.
    pub fn submit(&self, msg: AppMessage) -> Result<(), WbamError> {
        self.control(Envelope::Submit(msg))
    }

    /// Tells the node to start leader recovery.
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::NotReady`] when the node thread has exited.
    pub fn become_leader(&self) -> Result<(), WbamError> {
        self.control(Envelope::BecomeLeader)
    }

    fn control(&self, envelope: Envelope<M>) -> Result<(), WbamError> {
        self.env_tx.send(envelope).map_err(|_| WbamError::NotReady {
            process: self.id,
            reason: "node thread has exited".to_string(),
        })
    }

    /// A snapshot of the deliveries currently buffered.
    pub fn deliveries(&self) -> Vec<RuntimeDelivery> {
        self.deliveries.snapshot()
    }

    /// Removes and returns all buffered deliveries (see
    /// [`InProcessCluster::drain_deliveries`](crate::InProcessCluster::drain_deliveries)).
    pub fn drain_deliveries(&self) -> Vec<RuntimeDelivery> {
        self.deliveries.drain()
    }

    /// Total number of deliveries observed since spawn, including drained ones.
    pub fn total_deliveries(&self) -> u64 {
        self.deliveries.total()
    }

    /// Blocks until the cumulative delivery count reaches `count` or the
    /// timeout expires; returns whether the count was reached.
    pub fn wait_for_total(&self, count: u64, timeout: Duration) -> bool {
        self.deliveries.wait_for_total(count, timeout)
    }

    /// Time since the node was spawned.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stops the node and its poller thread and waits for them to exit.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.env_tx.send(Envelope::Shutdown);
        let _ = self.cmd_tx.send(PollerCmd::Shutdown);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxMsg, WhiteBoxReplica};
    use wbam_types::{ClusterConfig, Destination, GroupId, MsgId, Payload};

    /// Reserves one free loopback port per process by briefly binding port 0.
    fn reserve_addrs(cluster: &ClusterConfig) -> BTreeMap<ProcessId, SocketAddr> {
        cluster
            .all_processes()
            .into_iter()
            .map(|p| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind port 0");
                (p, l.local_addr().expect("local addr"))
            })
            .collect()
    }

    fn spawn_replica(
        cluster: &ClusterConfig,
        addrs: &BTreeMap<ProcessId, SocketAddr>,
        member: ProcessId,
        restart: bool,
        codec: WireCodec,
    ) -> TcpNode<WhiteBoxMsg> {
        let group = cluster.group_of(member).expect("replica group");
        let cfg = ReplicaConfig::new(member, group, cluster.clone()).without_auto_election();
        TcpNode::spawn_with_codec(Box::new(WhiteBoxReplica::new(cfg)), addrs, restart, codec)
            .expect("spawn")
    }

    fn order_of(node: &TcpNode<WhiteBoxMsg>) -> Vec<MsgId> {
        node.deliveries()
            .iter()
            .map(|d| d.delivery.msg.id)
            .collect()
    }

    /// A 2-group × 3-replica cluster over real loopback sockets delivers
    /// cross-group multicasts in identical per-replica order (binary codec,
    /// the deployed default).
    #[test]
    fn tcp_cluster_delivers_cross_group_multicasts_in_order() {
        let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
        let addrs = reserve_addrs(&cluster);
        let replicas: Vec<TcpNode<WhiteBoxMsg>> = cluster
            .groups()
            .iter()
            .flat_map(|gc| gc.members().to_vec())
            .map(|m| spawn_replica(&cluster, &addrs, m, false, WireCodec::Binary))
            .collect();
        let client_id = cluster.clients()[0];
        let client = TcpNode::spawn(
            Box::new(MulticastClient::new(ClientConfig::new(
                client_id,
                cluster.clone(),
            ))),
            &addrs,
            false,
        )
        .expect("spawn client");

        for seq in 0..5u64 {
            client
                .submit(AppMessage::new(
                    MsgId::new(client_id, seq),
                    Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
                    Payload::from(format!("op-{seq}").as_str()),
                ))
                .unwrap();
        }
        assert!(client.wait_for_total(5, Duration::from_secs(30)));
        for r in &replicas {
            assert!(
                r.wait_for_total(5, Duration::from_secs(30)),
                "replica {} delivered only {}",
                r.id(),
                r.total_deliveries()
            );
        }
        let reference = order_of(&replicas[0]);
        assert_eq!(reference.len(), 5);
        for r in &replicas[1..] {
            assert_eq!(order_of(r), reference, "replica {} order differs", r.id());
        }
        for r in replicas {
            r.shutdown();
        }
        client.shutdown();
    }

    /// The `--wire json` compatibility codec still carries a cluster
    /// end-to-end: a 1-group × 3-replica cluster plus client, all speaking
    /// JSON frames, delivers in identical order.
    #[test]
    fn json_codec_cluster_delivers() {
        let cluster = ClusterConfig::builder().groups(1, 3).clients(1).build();
        let addrs = reserve_addrs(&cluster);
        let replicas: Vec<TcpNode<WhiteBoxMsg>> = cluster.groups()[0]
            .members()
            .iter()
            .map(|&m| spawn_replica(&cluster, &addrs, m, false, WireCodec::Json))
            .collect();
        let client_id = cluster.clients()[0];
        let client = TcpNode::spawn_with_codec(
            Box::new(MulticastClient::new(ClientConfig::new(
                client_id,
                cluster.clone(),
            ))),
            &addrs,
            false,
            WireCodec::Json,
        )
        .expect("spawn client");
        for seq in 0..3u64 {
            client
                .submit(AppMessage::new(
                    MsgId::new(client_id, seq),
                    Destination::single(GroupId(0)),
                    Payload::from(format!("op-{seq}").as_str()),
                ))
                .unwrap();
        }
        assert!(client.wait_for_total(3, Duration::from_secs(30)));
        for r in &replicas {
            assert!(r.wait_for_total(3, Duration::from_secs(30)));
        }
        let reference = order_of(&replicas[0]);
        for r in &replicas[1..] {
            assert_eq!(order_of(r), reference);
        }
        for r in replicas {
            r.shutdown();
        }
        client.shutdown();
    }

    /// Regression for the handshake version/codec negotiation: a peer whose
    /// preamble announces the wrong codec (or garbage) is disconnected
    /// promptly — the accepting side closes the socket instead of trying to
    /// parse frames it cannot decode.
    #[test]
    fn mismatched_preamble_is_rejected_with_prompt_close() {
        let cluster = ClusterConfig::builder().groups(1, 1).clients(0).build();
        let addrs = reserve_addrs(&cluster);
        let replica = cluster.groups()[0].members()[0];
        let node = spawn_replica(&cluster, &addrs, replica, false, WireCodec::Binary);

        let probe = |preamble: &[u8]| -> std::io::Result<usize> {
            let mut stream = TcpStream::connect(addrs[&replica]).expect("dial node");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            stream.write_all(preamble).expect("write preamble");
            let mut buf = [0u8; 16];
            stream.read(&mut buf)
        };

        // A JSON-codec peer dialling a binary-codec node: closed with EOF (or
        // reset), never left hanging and never answered with data.
        match probe(&encode_preamble(WireCodec::Json)) {
            Ok(0) => {}
            Ok(n) => panic!("expected EOF, read {n} bytes"),
            Err(e) => assert!(
                matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe),
                "unexpected error {e:?}"
            ),
        }
        // A non-WBAM client (wrong magic) gets the same prompt close.
        match probe(b"GET /") {
            Ok(0) => {}
            Ok(n) => panic!("expected EOF, read {n} bytes"),
            Err(e) => assert!(
                matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe),
                "unexpected error {e:?}"
            ),
        }
        node.shutdown();
    }

    /// Killing a follower's process and spawning a fresh one on the same
    /// address (the `wbamd --restart` path) rejoins it to the group: peers'
    /// pollers reconnect with backoff, the fresh node's `Event::Restart`
    /// pulls the group state via the NEW_LEADER handshake, and it ends up
    /// with the same delivery order as the survivors.
    #[test]
    fn restarted_process_rejoins_over_tcp() {
        let cluster = ClusterConfig::builder().groups(1, 3).clients(1).build();
        let addrs = reserve_addrs(&cluster);
        let members = cluster.groups()[0].members().to_vec();
        let mut replicas: BTreeMap<ProcessId, TcpNode<WhiteBoxMsg>> = members
            .iter()
            .map(|m| {
                (
                    *m,
                    spawn_replica(&cluster, &addrs, *m, false, WireCodec::Binary),
                )
            })
            .collect();
        let client_id = cluster.clients()[0];
        let client = TcpNode::spawn(
            Box::new(MulticastClient::new(ClientConfig::new(
                client_id,
                cluster.clone(),
            ))),
            &addrs,
            false,
        )
        .expect("spawn client");
        let submit = |seq: u64| {
            client
                .submit(AppMessage::new(
                    MsgId::new(client_id, seq),
                    Destination::single(GroupId(0)),
                    Payload::from(format!("op-{seq}").as_str()),
                ))
                .unwrap();
        };

        for seq in 0..3 {
            submit(seq);
        }
        assert!(client.wait_for_total(3, Duration::from_secs(30)));

        // Kill the follower p1 (its listener and sockets die with it).
        let victim = members[1];
        replicas.remove(&victim).unwrap().shutdown();

        // The remaining quorum keeps delivering.
        for seq in 3..5 {
            submit(seq);
        }
        assert!(client.wait_for_total(5, Duration::from_secs(30)));

        // A fresh process takes over the victim's address and rejoins.
        let rejoined = spawn_replica(&cluster, &addrs, victim, true, WireCodec::Binary);
        // It recovers the full history (its delivery log starts empty) and
        // keeps up with new traffic.
        submit(5);
        assert!(
            rejoined.wait_for_total(6, Duration::from_secs(30)),
            "rejoined replica delivered only {}",
            rejoined.total_deliveries()
        );
        assert!(client.wait_for_total(6, Duration::from_secs(30)));
        let survivor = &replicas[&members[0]];
        assert!(survivor.wait_for_total(6, Duration::from_secs(30)));
        assert_eq!(
            order_of(&rejoined),
            order_of(survivor),
            "rejoined replica order differs from survivor"
        );

        rejoined.shutdown();
        for (_, r) in replicas {
            r.shutdown();
        }
        client.shutdown();
    }
}
