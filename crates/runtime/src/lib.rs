//! A real (non-simulated) multi-threaded runtime for WBAM protocol nodes.
//!
//! The deterministic simulator in `wbam-simnet` is ideal for experiments and
//! tests, but a library user who wants to embed atomic multicast in an actual
//! service needs the protocols to run on real threads with real queues. This
//! crate provides exactly that: every sans-IO [`Node`] runs on its own OS
//! thread, messages travel over in-process channels (one unbounded channel per
//! node, which preserves the per-sender FIFO property the protocols assume),
//! timers are served from each node thread's own timer heap, and application
//! deliveries are collected in a shared log the embedding application can
//! drain.
//!
//! The runtime is intentionally transport-agnostic in shape: the only
//! interaction points are "send a message to node X" and "hand this delivery
//! to the application", so swapping the channel transport for TCP framing
//! (`wbam_types::wire`) is a localized change.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxReplica};
//! use wbam_runtime::InProcessCluster;
//! use wbam_types::{AppMessage, ClusterConfig, Destination, GroupId, MsgId, Payload, ProcessId};
//!
//! let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
//! let mut nodes: Vec<Box<dyn wbam_types::Node<Msg = wbam_core::WhiteBoxMsg> + Send>> = Vec::new();
//! for gc in cluster.groups() {
//!     for member in gc.members() {
//!         let cfg = ReplicaConfig::new(*member, gc.id(), cluster.clone()).without_auto_election();
//!         nodes.push(Box::new(WhiteBoxReplica::new(cfg)));
//!     }
//! }
//! let client = cluster.clients()[0];
//! nodes.push(Box::new(MulticastClient::new(ClientConfig::new(client, cluster.clone()))));
//!
//! let handle = InProcessCluster::spawn(nodes);
//! let msg = AppMessage::new(
//!     MsgId::new(client, 0),
//!     Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
//!     Payload::from("hello"),
//! );
//! handle.submit(client, msg);
//! let deliveries = handle.wait_for_deliveries(6, Duration::from_secs(5));
//! assert!(deliveries.len() >= 6); // every replica of both groups delivers
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use wbam_types::{Action, AppMessage, DeliveredMessage, Event, Node, ProcessId, TimerId};

use std::collections::HashMap;

/// A delivery observed by the runtime, tagged with the delivering process and
/// wall-clock time since cluster start.
#[derive(Debug, Clone)]
pub struct RuntimeDelivery {
    /// The process that delivered the message.
    pub process: ProcessId,
    /// The delivery record (message + global timestamp).
    pub delivery: DeliveredMessage,
    /// Time since the cluster was spawned.
    pub elapsed: Duration,
}

enum Envelope<M> {
    FromPeer { from: ProcessId, msg: M },
    Submit(AppMessage),
    BecomeLeader,
    Shutdown,
}

struct PendingTimer {
    deadline: Instant,
    id: TimerId,
    generation: u64,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.deadline.cmp(&self.deadline) // min-heap
    }
}

/// A sans-IO node as the runtime executes it: boxed, sendable to its thread.
pub type BoxedNode<M> = Box<dyn Node<Msg = M> + Send>;

/// Handle to a running in-process cluster.
pub struct InProcessCluster<M> {
    senders: HashMap<ProcessId, Sender<Envelope<M>>>,
    deliveries: Arc<Mutex<Vec<RuntimeDelivery>>>,
    threads: Vec<JoinHandle<()>>,
    started: Instant,
}

impl<M: Send + Clone + 'static> InProcessCluster<M> {
    /// Spawns one thread per node and wires them together with channels.
    pub fn spawn(nodes: Vec<BoxedNode<M>>) -> Self {
        let started = Instant::now();
        let deliveries: Arc<Mutex<Vec<RuntimeDelivery>>> = Arc::new(Mutex::new(Vec::new()));
        let mut senders: HashMap<ProcessId, Sender<Envelope<M>>> = HashMap::new();
        let mut receivers: Vec<(BoxedNode<M>, Receiver<Envelope<M>>)> = Vec::new();
        for node in nodes {
            let (tx, rx) = unbounded();
            senders.insert(node.id(), tx);
            receivers.push((node, rx));
        }
        let mut threads = Vec::new();
        for (node, rx) in receivers {
            let senders = senders.clone();
            let deliveries = Arc::clone(&deliveries);
            threads.push(std::thread::spawn(move || {
                run_node(node, rx, senders, deliveries, started);
            }));
        }
        InProcessCluster {
            senders,
            deliveries,
            threads,
            started,
        }
    }

    /// Submits an application message for multicast at the given node
    /// (normally a client node).
    pub fn submit(&self, at: ProcessId, msg: AppMessage) {
        if let Some(tx) = self.senders.get(&at) {
            let _ = tx.send(Envelope::Submit(msg));
        }
    }

    /// Tells a node to start leader recovery (for failover demonstrations).
    pub fn become_leader(&self, at: ProcessId) {
        if let Some(tx) = self.senders.get(&at) {
            let _ = tx.send(Envelope::BecomeLeader);
        }
    }

    /// A snapshot of all deliveries observed so far.
    pub fn deliveries(&self) -> Vec<RuntimeDelivery> {
        self.deliveries.lock().clone()
    }

    /// Blocks until at least `count` deliveries have been observed or the
    /// timeout expires; returns the deliveries observed so far.
    pub fn wait_for_deliveries(&self, count: usize, timeout: Duration) -> Vec<RuntimeDelivery> {
        let deadline = Instant::now() + timeout;
        loop {
            let current = self.deliveries.lock().clone();
            if current.len() >= count || Instant::now() >= deadline {
                return current;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Time since the cluster was spawned.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stops all node threads and waits for them to exit.
    pub fn shutdown(self) {
        for tx in self.senders.values() {
            let _ = tx.send(Envelope::Shutdown);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn run_node<M: Send + Clone + 'static>(
    mut node: BoxedNode<M>,
    rx: Receiver<Envelope<M>>,
    senders: HashMap<ProcessId, Sender<Envelope<M>>>,
    deliveries: Arc<Mutex<Vec<RuntimeDelivery>>>,
    started: Instant,
) {
    let my_id = node.id();
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let mut generations: HashMap<TimerId, u64> = HashMap::new();

    let execute = |actions: Vec<Action<M>>,
                   timers: &mut BinaryHeap<PendingTimer>,
                   generations: &mut HashMap<TimerId, u64>| {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    if let Some(tx) = senders.get(&to) {
                        let _ = tx.send(Envelope::FromPeer { from: my_id, msg });
                    }
                }
                Action::Deliver(delivery) => {
                    deliveries.lock().push(RuntimeDelivery {
                        process: my_id,
                        delivery,
                        elapsed: started.elapsed(),
                    });
                }
                Action::SetTimer { id, delay } => {
                    let gen = generations.entry(id).and_modify(|g| *g += 1).or_insert(1);
                    timers.push(PendingTimer {
                        deadline: Instant::now() + delay,
                        id,
                        generation: *gen,
                    });
                }
                Action::CancelTimer(id) => {
                    generations.entry(id).and_modify(|g| *g += 1).or_insert(1);
                }
            }
        }
    };

    // Initialise the node.
    let init_actions = node.on_event(started.elapsed(), Event::Init);
    execute(init_actions, &mut timers, &mut generations);

    loop {
        // Fire any due timers.
        let now = Instant::now();
        while let Some(t) = timers.peek() {
            if t.deadline > now {
                break;
            }
            let t = timers.pop().expect("peeked");
            if generations.get(&t.id).copied().unwrap_or(0) != t.generation {
                continue; // cancelled or re-armed
            }
            let elapsed = started.elapsed();
            let actions = node.on_event(
                elapsed,
                Event::Timer {
                    id: t.id,
                    now: elapsed,
                },
            );
            execute(actions, &mut timers, &mut generations);
        }
        // Wait for the next message or the next timer deadline.
        let wait = timers
            .peek()
            .map(|t| t.deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        let envelope = match rx.recv_timeout(wait) {
            Ok(e) => e,
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break,
        };
        let elapsed = started.elapsed();
        let actions = match envelope {
            Envelope::Shutdown => break,
            Envelope::FromPeer { from, msg } => {
                node.on_event(elapsed, Event::Message { from, msg })
            }
            Envelope::Submit(msg) => node.on_event(elapsed, Event::Multicast(msg)),
            Envelope::BecomeLeader => node.on_event(elapsed, Event::BecomeLeader),
        };
        execute(actions, &mut timers, &mut generations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxMsg, WhiteBoxReplica};
    use wbam_types::{ClusterConfig, Destination, GroupId, MsgId, Payload};

    fn build_nodes(cluster: &ClusterConfig) -> Vec<BoxedNode<WhiteBoxMsg>> {
        let mut nodes: Vec<BoxedNode<WhiteBoxMsg>> = Vec::new();
        for gc in cluster.groups() {
            for member in gc.members() {
                let cfg =
                    ReplicaConfig::new(*member, gc.id(), cluster.clone()).without_auto_election();
                nodes.push(Box::new(WhiteBoxReplica::new(cfg)));
            }
        }
        for client in cluster.clients() {
            nodes.push(Box::new(MulticastClient::new(ClientConfig::new(
                *client,
                cluster.clone(),
            ))));
        }
        nodes
    }

    #[test]
    fn threaded_cluster_delivers_multicasts() {
        let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
        let handle = InProcessCluster::spawn(build_nodes(&cluster));
        let client = cluster.clients()[0];
        for seq in 0..5u64 {
            let msg = AppMessage::new(
                MsgId::new(client, seq),
                Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
                Payload::from(format!("op-{seq}").as_str()),
            );
            handle.submit(client, msg);
        }
        // 5 messages × 6 replicas + 5 client completions = 35 deliveries.
        let deliveries = handle.wait_for_deliveries(35, Duration::from_secs(10));
        assert!(
            deliveries.len() >= 35,
            "expected at least 35 deliveries, got {}",
            deliveries.len()
        );
        // Each replica delivered the five messages in the same order.
        let order_of = |p: ProcessId| -> Vec<MsgId> {
            deliveries
                .iter()
                .filter(|d| d.process == p)
                .map(|d| d.delivery.msg.id)
                .collect()
        };
        let reference = order_of(ProcessId(0));
        assert_eq!(reference.len(), 5);
        for p in 1..6u32 {
            assert_eq!(
                order_of(ProcessId(p)),
                reference,
                "replica p{p} order differs"
            );
        }
        handle.shutdown();
    }

    #[test]
    fn uptime_and_empty_delivery_snapshot() {
        let cluster = ClusterConfig::builder().groups(1, 3).clients(1).build();
        let handle = InProcessCluster::spawn(build_nodes(&cluster));
        assert!(handle.deliveries().is_empty());
        assert!(handle.uptime() < Duration::from_secs(5));
        handle.shutdown();
    }
}
