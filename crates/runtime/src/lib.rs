//! A real (non-simulated) runtime for WBAM protocol nodes.
//!
//! The deterministic simulator in `wbam-simnet` is ideal for experiments and
//! tests, but deploying atomic multicast means running the protocols on real
//! threads and real sockets. This crate provides both deployment shapes
//! around one shared, transport-independent node event loop
//! (crate-internal `node_loop`): every sans-IO [`Node`](wbam_types::Node) runs on
//! its own OS thread, timers are served from the node thread's own timer
//! heap, application deliveries land in a shared [`DeliveryLog`], and sends
//! go through a [`Transport`]:
//!
//! * [`InProcessCluster`] — every node is a thread in this process and the
//!   transport is an in-process channel per node ([`ChannelTransport`]).
//!   Ideal for embedding a whole cluster in one service or test.
//! * [`TcpNode`] — one node per OS process, the transport is real TCP with
//!   `wbam_types::wire` framing (compact binary by default, JSON behind
//!   `--wire json`), driven by a single nonblocking poller thread with
//!   coalesced writes and reconnect-with-backoff ([`tcp::TcpTransport`]).
//!   This is what the `wbamd` deployment binary (in `wbam-harness`) runs; see
//!   `crates/harness` for the cluster topology spec.
//! * [`DeterministicRuntime`] — the same node loop and a channel transport,
//!   but driven single-threaded by a seeded scheduler over a
//!   [`VirtualClock`]: every interleaving of mailbox delivery, timer firing
//!   and crash/restart is chosen by a seed and byte-for-byte replayable.
//!   This is the runtime analogue of the `wbam-simnet` schedule explorer,
//!   exercising the *deployed* code path (burst coalescing, timer
//!   generations, `DeliveryLog`) instead of the simulator's.
//!
//! All three consume time exclusively through the [`Clock`] trait —
//! [`WallClock`] (zero-cost `Instant`/`recv_timeout` wrappers) in the two
//! production shapes, [`VirtualClock`] under the deterministic scheduler.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxReplica};
//! use wbam_runtime::InProcessCluster;
//! use wbam_types::{AppMessage, ClusterConfig, Destination, GroupId, MsgId, Payload, ProcessId};
//!
//! let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
//! let mut nodes: Vec<Box<dyn wbam_types::Node<Msg = wbam_core::WhiteBoxMsg> + Send>> = Vec::new();
//! for gc in cluster.groups() {
//!     for member in gc.members() {
//!         let cfg = ReplicaConfig::new(*member, gc.id(), cluster.clone()).without_auto_election();
//!         nodes.push(Box::new(WhiteBoxReplica::new(cfg)));
//!     }
//! }
//! let client = cluster.clients()[0];
//! nodes.push(Box::new(MulticastClient::new(ClientConfig::new(client, cluster.clone()))));
//!
//! let handle = InProcessCluster::spawn(nodes);
//! let msg = AppMessage::new(
//!     MsgId::new(client, 0),
//!     Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
//!     Payload::from("hello"),
//! );
//! handle.submit(client, msg).unwrap();
//! let deliveries = handle.wait_for_deliveries(6, Duration::from_secs(5));
//! assert!(deliveries.len() >= 6); // every replica of both groups delivers
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
mod deterministic;
mod node_loop;
pub mod tcp;
pub mod transport;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Sender};
use wbam_types::{AppMessage, DeliveredMessage, ProcessId, WbamError};

use node_loop::{run_node, Envelope};

pub use clock::{Clock, VirtualClock, WaitError, WallClock};
pub use deterministic::{DeterministicRuntime, RuntimeScript, ScriptEvent, SentRecord, TraceEvent};
pub use tcp::TcpNode;
pub use transport::{ChannelTransport, Transport};

/// A delivery observed by the runtime, tagged with the delivering process and
/// wall-clock time since cluster start.
#[derive(Debug, Clone)]
pub struct RuntimeDelivery {
    /// The process that delivered the message.
    pub process: ProcessId,
    /// The delivery record (message + global timestamp).
    pub delivery: DeliveredMessage,
    /// Time since the cluster was spawned.
    pub elapsed: Duration,
}

/// The shared application-delivery log of a runtime: a buffer of
/// [`RuntimeDelivery`] records plus a cumulative counter, with condvar-based
/// waiting instead of polling.
///
/// Node threads [`push`](Self::push) into it; the embedding application reads
/// a [`snapshot`](Self::snapshot) or [`drain`](Self::drain)s the buffer (so a
/// long-running cluster does not grow the log without bound). Waiters block
/// on a condition variable signalled by every push — no busy-polling, no
/// per-iteration clone of the log.
///
/// The log never panics on a poisoned mutex: a node thread that panics while
/// holding the lock (every mutation is append-only, so the state stays
/// consistent) must not cascade the panic into every other thread — node or
/// embedder — that later touches the log. Instead the poisoning is recorded
/// and exposed through [`is_poisoned`](Self::is_poisoned); the TCP runtime's
/// control-path accessors ([`TcpNode::deliveries`] and friends) turn it into
/// a typed [`WbamError::NotReady`] for the embedder.
#[derive(Default)]
pub struct DeliveryLog {
    state: Mutex<LogState>,
    newly_delivered: Condvar,
    poisoned: AtomicBool,
}

#[derive(Default)]
struct LogState {
    buffered: Vec<RuntimeDelivery>,
    total: u64,
}

impl DeliveryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        DeliveryLog::default()
    }

    /// Locks the state, recovering from (and recording) poisoning instead of
    /// propagating the panic to the caller's thread.
    fn state(&self) -> MutexGuard<'_, LogState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.poisoned.store(true, Ordering::Relaxed);
                poisoned.into_inner()
            }
        }
    }

    /// Whether a thread has panicked while holding the log's lock. The data
    /// itself stays consistent (every mutation is append-only), but the
    /// panicking node thread is gone, so counts may never advance again —
    /// control-path APIs use this to report [`WbamError::NotReady`] instead
    /// of hanging or panicking.
    pub fn is_poisoned(&self) -> bool {
        // A past poisoning may not have been observed by `state()` yet; check
        // the mutex directly as well so the very first accessor sees it.
        self.poisoned.load(Ordering::Relaxed) || self.state.is_poisoned()
    }

    /// Appends a delivery and wakes all waiters.
    pub fn push(&self, delivery: RuntimeDelivery) {
        let mut state = self.state();
        state.buffered.push(delivery);
        state.total += 1;
        self.newly_delivered.notify_all();
    }

    /// Appends a batch of deliveries under a single lock acquisition, waking
    /// waiters once. The node event loop hands over all deliveries of one
    /// protocol step through this, so the hot path takes the log mutex at
    /// most once per event instead of once per delivery.
    pub fn push_many(&self, deliveries: Vec<RuntimeDelivery>) {
        if deliveries.is_empty() {
            return;
        }
        let mut state = self.state();
        state.total += deliveries.len() as u64;
        state.buffered.extend(deliveries);
        self.newly_delivered.notify_all();
    }

    /// A clone of the deliveries currently buffered (those not yet drained).
    pub fn snapshot(&self) -> Vec<RuntimeDelivery> {
        self.state().buffered.clone()
    }

    /// Removes and returns all buffered deliveries. The cumulative
    /// [`total`](Self::total) is unaffected.
    pub fn drain(&self) -> Vec<RuntimeDelivery> {
        std::mem::take(&mut self.state().buffered)
    }

    /// Total number of deliveries ever pushed, including drained ones.
    pub fn total(&self) -> u64 {
        self.state().total
    }

    /// Blocks until the cumulative delivery count reaches `count` or the
    /// timeout expires; returns whether the count was reached.
    pub fn wait_for_total(&self, count: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.state();
        loop {
            if state.total >= count {
                return true;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (next, timed_out) = match self.newly_delivered.wait_timeout(state, remaining) {
                Ok(woken) => woken,
                Err(poisoned) => {
                    self.poisoned.store(true, Ordering::Relaxed);
                    poisoned.into_inner()
                }
            };
            state = next;
            if timed_out.timed_out() && state.total < count {
                return false;
            }
        }
    }

    /// Blocks until the cumulative delivery count reaches `count` or the
    /// timeout expires; returns a snapshot of the buffered deliveries.
    pub fn wait_for(&self, count: u64, timeout: Duration) -> Vec<RuntimeDelivery> {
        self.wait_for_total(count, timeout);
        self.snapshot()
    }
}

/// A sans-IO node as the runtime executes it: boxed, sendable to its thread.
pub type BoxedNode<M> = Box<dyn wbam_types::Node<Msg = M> + Send>;

/// Handle to a running in-process cluster.
pub struct InProcessCluster<M> {
    senders: Arc<HashMap<ProcessId, Sender<Envelope<M>>>>,
    deliveries: Arc<DeliveryLog>,
    threads: Vec<JoinHandle<()>>,
    clock: WallClock,
}

impl<M: Send + 'static> InProcessCluster<M> {
    /// Spawns one thread per node and wires them together with channels.
    pub fn spawn(nodes: Vec<BoxedNode<M>>) -> Self {
        let clock = WallClock::new();
        let deliveries = Arc::new(DeliveryLog::new());
        let mut senders: HashMap<ProcessId, Sender<Envelope<M>>> = HashMap::new();
        let mut receivers = Vec::new();
        for node in nodes {
            let (tx, rx) = unbounded();
            senders.insert(node.id(), tx);
            receivers.push((node, rx));
        }
        let senders = Arc::new(senders);
        let mut threads = Vec::new();
        for (node, rx) in receivers {
            let transport = ChannelTransport::new(node.id(), Arc::clone(&senders));
            let deliveries = Arc::clone(&deliveries);
            threads.push(std::thread::spawn(move || {
                run_node(node, rx, transport, deliveries, clock);
            }));
        }
        InProcessCluster {
            senders,
            deliveries,
            threads,
            clock,
        }
    }

    fn control(&self, at: ProcessId, envelope: Envelope<M>) -> Result<(), WbamError> {
        let tx = self.senders.get(&at).ok_or(WbamError::UnknownProcess(at))?;
        tx.send(envelope).map_err(|_| WbamError::NotReady {
            process: at,
            reason: "node thread has exited".to_string(),
        })
    }

    /// Submits an application message for multicast at the given node
    /// (normally a client node).
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::UnknownProcess`] when no node with id `at` exists
    /// in this cluster (a typo'd target used to be silently dropped, making it
    /// indistinguishable from a lost message), or [`WbamError::NotReady`] when
    /// the node's thread has exited.
    pub fn submit(&self, at: ProcessId, msg: AppMessage) -> Result<(), WbamError> {
        self.control(at, Envelope::Submit(msg))
    }

    /// Tells a node to start leader recovery (for failover demonstrations).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::submit`].
    pub fn become_leader(&self, at: ProcessId) -> Result<(), WbamError> {
        self.control(at, Envelope::BecomeLeader)
    }

    /// Injects `Event::Restart` at a node: volatile context is discarded and
    /// the node rejoins the protocol, mirroring the simulator's restart path.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::submit`].
    pub fn restart(&self, at: ProcessId) -> Result<(), WbamError> {
        self.control(at, Envelope::Restart)
    }

    /// A snapshot of the deliveries currently buffered (those not yet
    /// removed by [`Self::drain_deliveries`]).
    pub fn deliveries(&self) -> Vec<RuntimeDelivery> {
        self.deliveries.snapshot()
    }

    /// Removes and returns all buffered deliveries, so long-running clusters
    /// can consume the log incrementally instead of growing it without bound.
    /// The cumulative count in [`Self::total_deliveries`] is unaffected.
    pub fn drain_deliveries(&self) -> Vec<RuntimeDelivery> {
        self.deliveries.drain()
    }

    /// Total number of deliveries observed since spawn, including drained
    /// ones.
    pub fn total_deliveries(&self) -> u64 {
        self.deliveries.total()
    }

    /// Blocks until at least `count` deliveries have been observed (counting
    /// drained ones) or the timeout expires; returns the deliveries currently
    /// buffered.
    ///
    /// Waiting blocks on a condition variable signalled by every delivery —
    /// it no longer busy-polls with a sleep, nor clones the entire log once
    /// per millisecond while waiting.
    pub fn wait_for_deliveries(&self, count: usize, timeout: Duration) -> Vec<RuntimeDelivery> {
        self.deliveries.wait_for(count as u64, timeout)
    }

    /// Time since the cluster was spawned.
    pub fn uptime(&self) -> Duration {
        self.clock.now()
    }

    /// Stops all node threads and waits for them to exit.
    pub fn shutdown(self) {
        for tx in self.senders.values() {
            let _ = tx.send(Envelope::Shutdown);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxMsg, WhiteBoxReplica};
    use wbam_types::{ClusterConfig, Destination, GroupId, MsgId, Payload};

    fn build_nodes(cluster: &ClusterConfig) -> Vec<BoxedNode<WhiteBoxMsg>> {
        let mut nodes: Vec<BoxedNode<WhiteBoxMsg>> = Vec::new();
        for gc in cluster.groups() {
            for member in gc.members() {
                let cfg =
                    ReplicaConfig::new(*member, gc.id(), cluster.clone()).without_auto_election();
                nodes.push(Box::new(WhiteBoxReplica::new(cfg)));
            }
        }
        for client in cluster.clients() {
            nodes.push(Box::new(MulticastClient::new(ClientConfig::new(
                *client,
                cluster.clone(),
            ))));
        }
        nodes
    }

    #[test]
    fn threaded_cluster_delivers_multicasts() {
        let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
        let handle = InProcessCluster::spawn(build_nodes(&cluster));
        let client = cluster.clients()[0];
        for seq in 0..5u64 {
            let msg = AppMessage::new(
                MsgId::new(client, seq),
                Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
                Payload::from(format!("op-{seq}").as_str()),
            );
            handle.submit(client, msg).unwrap();
        }
        // 5 messages × 6 replicas + 5 client completions = 35 deliveries.
        let deliveries = handle.wait_for_deliveries(35, Duration::from_secs(10));
        assert!(
            deliveries.len() >= 35,
            "expected at least 35 deliveries, got {}",
            deliveries.len()
        );
        // Each replica delivered the five messages in the same order.
        let order_of = |p: ProcessId| -> Vec<MsgId> {
            deliveries
                .iter()
                .filter(|d| d.process == p)
                .map(|d| d.delivery.msg.id)
                .collect()
        };
        let reference = order_of(ProcessId(0));
        assert_eq!(reference.len(), 5);
        for p in 1..6u32 {
            assert_eq!(
                order_of(ProcessId(p)),
                reference,
                "replica p{p} order differs"
            );
        }
        handle.shutdown();
    }

    #[test]
    fn uptime_and_empty_delivery_snapshot() {
        let cluster = ClusterConfig::builder().groups(1, 3).clients(1).build();
        let handle = InProcessCluster::spawn(build_nodes(&cluster));
        assert!(handle.deliveries().is_empty());
        assert!(handle.uptime() < Duration::from_secs(5));
        handle.shutdown();
    }

    /// Regression (runtime bugfix sweep): control operations on an unknown
    /// process id fail loudly instead of silently no-opping — a typo'd target
    /// used to look exactly like a lost message.
    #[test]
    fn control_operations_reject_unknown_processes() {
        let cluster = ClusterConfig::builder().groups(1, 3).clients(1).build();
        let handle = InProcessCluster::spawn(build_nodes(&cluster));
        let bogus = ProcessId(999);
        let msg = AppMessage::new(
            MsgId::new(bogus, 0),
            Destination::single(GroupId(0)),
            Payload::from("x"),
        );
        assert_eq!(
            handle.submit(bogus, msg),
            Err(WbamError::UnknownProcess(bogus))
        );
        assert_eq!(
            handle.become_leader(bogus),
            Err(WbamError::UnknownProcess(bogus))
        );
        assert_eq!(handle.restart(bogus), Err(WbamError::UnknownProcess(bogus)));
        handle.shutdown();
    }

    /// Regression (runtime bugfix sweep): draining the delivery log keeps the
    /// cumulative count intact, and waiting counts drained deliveries — so a
    /// long-running embedder can drain incrementally without ever growing the
    /// buffer or confusing waiters.
    #[test]
    fn drain_keeps_cumulative_count_and_wait_semantics() {
        let cluster = ClusterConfig::builder().groups(1, 3).clients(1).build();
        let handle = InProcessCluster::spawn(build_nodes(&cluster));
        let client = cluster.clients()[0];
        let submit = |seq: u64| {
            let msg = AppMessage::new(
                MsgId::new(client, seq),
                Destination::single(GroupId(0)),
                Payload::from("x"),
            );
            handle.submit(client, msg).unwrap();
        };
        submit(0);
        // 3 replica deliveries + 1 client completion.
        assert!(handle.deliveries.wait_for_total(4, Duration::from_secs(10)));
        let drained = handle.drain_deliveries();
        assert!(drained.len() >= 4);
        assert!(handle.deliveries().len() < drained.len());
        assert_eq!(handle.total_deliveries(), drained.len() as u64);
        // The next wait counts the drained deliveries too.
        submit(1);
        let buffered = handle.wait_for_deliveries(8, Duration::from_secs(10));
        assert!(handle.total_deliveries() >= 8);
        // Only the new deliveries are buffered.
        assert!(buffered.iter().all(|d| d.delivery.msg.id.seq == 1));
        handle.shutdown();
    }

    /// Regression for the poison cascade: a thread that panics while holding
    /// the delivery-log lock must not turn every later accessor into a panic.
    /// The log recovers (its mutations are append-only, so the state is still
    /// consistent) and reports the poisoning through `is_poisoned()` so the
    /// TCP runtime's control-path APIs can surface `WbamError::NotReady`.
    #[test]
    fn poisoned_delivery_log_recovers_instead_of_cascading() {
        let log = Arc::new(DeliveryLog::new());
        assert!(!log.is_poisoned());
        let delivery = |seq: u64| RuntimeDelivery {
            process: ProcessId(0),
            delivery: DeliveredMessage {
                msg: AppMessage::new(
                    MsgId::new(ProcessId(0), seq),
                    Destination::single(GroupId(0)),
                    Payload::from("x"),
                ),
                global_ts: None,
            },
            elapsed: Duration::ZERO,
        };
        log.push(delivery(0));

        // Panic while holding the lock, as a node thread dying mid-push would.
        let poisoner = Arc::clone(&log);
        let result = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("node thread dies while publishing");
        })
        .join();
        assert!(result.is_err(), "the spawned thread must have panicked");

        // Every accessor keeps working on the recovered, consistent state...
        assert!(log.is_poisoned());
        assert_eq!(log.total(), 1);
        assert_eq!(log.snapshot().len(), 1);
        log.push(delivery(1));
        assert_eq!(log.total(), 2);
        assert!(log.wait_for_total(2, Duration::from_millis(100)));
        assert_eq!(log.drain().len(), 2);
        // ...and the poisoning stays observable for control-path mapping.
        assert!(log.is_poisoned());
    }

    /// The condvar wait wakes promptly (well under the timeout) once the
    /// expected count is reached, and respects the timeout when it is not.
    #[test]
    fn wait_for_deliveries_times_out_cleanly() {
        let cluster = ClusterConfig::builder().groups(1, 3).clients(1).build();
        let handle = InProcessCluster::spawn(build_nodes(&cluster));
        let begin = Instant::now();
        let observed = handle.wait_for_deliveries(1, Duration::from_millis(200));
        assert!(observed.is_empty());
        let waited = begin.elapsed();
        assert!(
            waited >= Duration::from_millis(150),
            "returned after {waited:?} without any delivery"
        );
        handle.shutdown();
    }
}
