//! The transport abstraction separating protocol execution from message
//! carriage.
//!
//! The (crate-internal) node event loop executes
//! [`Action::Send`](wbam_types::Action::Send) by handing the message to a
//! [`Transport`]; everything else about running a node (timers, deliveries,
//! control events) is transport-independent. Two transports exist:
//!
//! * [`ChannelTransport`] — in-process crossbeam channels, one per node
//!   (used by [`InProcessCluster`](crate::InProcessCluster)); and
//! * [`TcpTransport`](crate::tcp::TcpTransport) — real TCP sockets with
//!   `wbam_types::wire` framing, driven by a single nonblocking
//!   wake-on-ready poller thread (every socket plus a self-pipe wake fd
//!   multiplexed through `poll(2)`; a `send_many` burst wakes the poller
//!   with one byte down the pipe), used by the per-process
//!   [`TcpNode`](crate::tcp::TcpNode) runtime and the `wbamd` deployment
//!   binary.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam_channel::Sender;
use wbam_types::ProcessId;

use crate::node_loop::Envelope;

/// Carries protocol messages from the local node to its peers.
///
/// Sends are best-effort, matching the fair-lossy link model the protocols
/// are designed for: a message to an unknown, crashed or unreachable peer is
/// dropped (or queued for a reconnecting peer) and the protocols' retry
/// timers recover. A transport must preserve per-sender FIFO order for the
/// messages it does deliver.
pub trait Transport<M>: Send + 'static {
    /// Sends `msg` to process `to`. Never blocks on the peer.
    fn send(&self, to: ProcessId, msg: M);

    /// Sends a batch of messages, preserving per-destination order.
    ///
    /// The node event loop hands over all sends of one protocol step through
    /// this, so a transport with per-handoff cost (the TCP poller's command
    /// channel) pays it once per event instead of once per message. The
    /// default just loops over [`send`](Self::send).
    fn send_many(&self, msgs: Vec<(ProcessId, M)>) {
        for (to, msg) in msgs {
            self.send(to, msg);
        }
    }
}

/// In-process transport: peers are threads in this process, each owning an
/// unbounded channel (which trivially preserves per-sender FIFO order).
pub struct ChannelTransport<M> {
    from: ProcessId,
    peers: Arc<HashMap<ProcessId, Sender<Envelope<M>>>>,
}

impl<M> ChannelTransport<M> {
    /// Creates the transport used by node `from` to reach `peers`.
    pub(crate) fn new(
        from: ProcessId,
        peers: Arc<HashMap<ProcessId, Sender<Envelope<M>>>>,
    ) -> Self {
        ChannelTransport { from, peers }
    }
}

impl<M: Send + 'static> Transport<M> for ChannelTransport<M> {
    fn send(&self, to: ProcessId, msg: M) {
        if let Some(tx) = self.peers.get(&to) {
            let _ = tx.send(Envelope::FromPeer {
                from: self.from,
                msg,
            });
        }
    }
}
