//! A standalone atomic-broadcast node built on [`PaxosReplica`].
//!
//! [`PaxosNode`] wraps the embeddable Paxos core into a self-contained sans-IO
//! [`Node`]: applications submit commands via [`Event::Multicast`] (the
//! payload is the command), followers forward submissions to the leader, and
//! decided commands are surfaced as [`Action::Deliver`]s in log order. Within
//! a single group this is exactly atomic broadcast, the special case of atomic
//! multicast with one group (§II of the paper).

use std::time::Duration;

use serde::{Deserialize, Serialize};
use wbam_types::{
    Action, AppMessage, DeliveredMessage, Event, GroupId, Node, ProcessId, Timestamp,
};

use crate::{PaxosConfig, PaxosMsg, PaxosOutput, PaxosReplica};

/// Wire messages of the standalone Paxos node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PaxosNodeMsg {
    /// A client or follower forwards a command (an application message) to the
    /// leader for sequencing.
    Submit {
        /// The application message to order.
        msg: AppMessage,
    },
    /// An embedded Paxos protocol message.
    Paxos(PaxosMsg<AppMessage>),
}

/// A single-group atomic-broadcast node backed by multi-Paxos.
pub struct PaxosNode {
    id: ProcessId,
    group: GroupId,
    core: PaxosReplica<AppMessage>,
    leader_hint: ProcessId,
    delivered: u64,
}

impl PaxosNode {
    /// Creates a node for the given group member set.
    pub fn new(id: ProcessId, group: GroupId, members: Vec<ProcessId>) -> Self {
        let leader_hint = members[0];
        PaxosNode {
            id,
            group,
            core: PaxosReplica::new(PaxosConfig::new(id, members)),
            leader_hint,
            delivered: 0,
        }
    }

    /// Number of commands delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Whether this node believes it leads the group.
    pub fn is_leader(&self) -> bool {
        self.core.is_leader()
    }

    fn convert(&mut self, out: PaxosOutput<AppMessage>) -> Vec<Action<PaxosNodeMsg>> {
        let mut actions = Vec::new();
        for (to, msg) in out.outgoing {
            actions.push(Action::send(to, PaxosNodeMsg::Paxos(msg)));
        }
        for (slot, msg) in out.decided {
            self.delivered += 1;
            actions.push(Action::Deliver(DeliveredMessage::with_timestamp(
                msg,
                Timestamp::new(slot + 1, self.group),
            )));
        }
        actions
    }
}

impl Node for PaxosNode {
    type Msg = PaxosNodeMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_event(
        &mut self,
        _now: Duration,
        event: Event<PaxosNodeMsg>,
    ) -> Vec<Action<PaxosNodeMsg>> {
        match event {
            Event::Multicast(msg) => {
                if self.core.is_leader() {
                    let out = self.core.propose(msg);
                    self.convert(out)
                } else {
                    vec![Action::send(self.leader_hint, PaxosNodeMsg::Submit { msg })]
                }
            }
            Event::BecomeLeader => {
                let out = self.core.campaign();
                self.convert(out)
            }
            Event::Message { from, msg } => match msg {
                PaxosNodeMsg::Submit { msg } => {
                    if self.core.is_leader() {
                        let out = self.core.propose(msg);
                        self.convert(out)
                    } else {
                        vec![Action::send(self.leader_hint, PaxosNodeMsg::Submit { msg })]
                    }
                }
                PaxosNodeMsg::Paxos(m) => {
                    let out = self.core.handle(from, m);
                    let actions = self.convert(out);
                    if self.core.is_leader() {
                        self.leader_hint = self.id;
                    }
                    actions
                }
            },
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_simnet::{LatencyModel, SimConfig, Simulation};
    use wbam_types::{Destination, MsgId, Payload};

    fn app(seq: u64) -> AppMessage {
        AppMessage::new(
            MsgId::new(ProcessId(9), seq),
            Destination::single(GroupId(0)),
            Payload::from("cmd"),
        )
    }

    fn build_sim() -> Simulation<PaxosNodeMsg> {
        let mut sim = Simulation::new(SimConfig {
            latency: LatencyModel::constant(Duration::from_millis(1)),
            ..SimConfig::default()
        });
        let members = vec![ProcessId(0), ProcessId(1), ProcessId(2)];
        for id in &members {
            sim.add_replica(
                Box::new(PaxosNode::new(*id, GroupId(0), members.clone())),
                GroupId(0),
                wbam_types::SiteId(0),
            );
        }
        sim
    }

    #[test]
    fn commands_are_delivered_in_the_same_order_everywhere() {
        let mut sim = build_sim();
        for seq in 0..10 {
            sim.schedule_multicast(Duration::from_millis(seq), ProcessId(0), app(seq));
        }
        sim.run_until_quiescent(Duration::from_secs(5));
        let metrics = sim.metrics();
        let order0 = metrics.delivery_order_at(ProcessId(0));
        let order1 = metrics.delivery_order_at(ProcessId(1));
        let order2 = metrics.delivery_order_at(ProcessId(2));
        assert_eq!(order0.len(), 10);
        assert_eq!(order0, order1);
        assert_eq!(order1, order2);
    }

    #[test]
    fn follower_forwards_submissions_to_the_leader() {
        let mut sim = build_sim();
        sim.schedule_multicast(Duration::ZERO, ProcessId(2), app(0));
        sim.run_until_quiescent(Duration::from_secs(5));
        let metrics = sim.metrics();
        assert_eq!(metrics.delivery_order_at(ProcessId(0)).len(), 1);
        assert_eq!(metrics.delivery_order_at(ProcessId(2)).len(), 1);
    }
}
