//! Multi-Paxos replicated log — the black-box consensus substrate used by the
//! baseline multicast protocols (fault-tolerant Skeen and FastCast).
//!
//! The paper's competitor protocols (§VI, "Competitor protocols") replicate
//! each multicast group with consensus: every action of Skeen's protocol at a
//! group (assigning a local timestamp, recording a global timestamp) is first
//! agreed upon by the group through a consensus instance. This crate provides
//! that substrate as an *embeddable*, sans-IO multi-Paxos core:
//!
//! * [`PaxosReplica`] — one group member. The distinguished leader sequences
//!   commands into slots and runs phase 2 (`ACCEPT`/`ACCEPTED`) against its
//!   peers; a newly elected leader first runs phase 1 (`PREPARE`/`PROMISE`) to
//!   recover possibly chosen commands.
//! * [`PaxosMsg`] — the wire messages, generic over the command type.
//! * [`PaxosOutput`] — what a step produced: messages to send and commands
//!   newly *decided* (chosen and contiguous in the log), in log order.
//!
//! The baselines embed a `PaxosReplica<Command>` per group inside their own
//! protocol nodes; the crate also ships a standalone [`PaxosNode`] that turns
//! the core into a self-contained atomic-broadcast node for one group, which
//! is used by this crate's tests and can serve as a minimal replication
//! building block on its own.
//!
//! # Example
//!
//! ```
//! use wbam_consensus::{PaxosConfig, PaxosReplica};
//! use wbam_types::ProcessId;
//!
//! let members = vec![ProcessId(0), ProcessId(1), ProcessId(2)];
//! let mut leader: PaxosReplica<String> =
//!     PaxosReplica::new(PaxosConfig::new(ProcessId(0), members.clone()));
//! // The initial leader can propose immediately (implicit phase 1 for ballot 1).
//! let out = leader.propose("set x = 1".to_string());
//! assert_eq!(out.outgoing.len(), 3); // ACCEPT to every member, itself included
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use wbam_types::{Ballot, ProcessId};

/// A slot (position) in the replicated log.
pub type Slot = u64;

/// Wire messages of multi-Paxos, generic over the replicated command type `C`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PaxosMsg<C> {
    /// Phase 1a: a prospective leader asks acceptors to join `ballot`.
    Prepare {
        /// The ballot being established.
        ballot: Ballot,
    },
    /// Phase 1b: an acceptor joins `ballot` and reports every value it has
    /// accepted so far.
    Promise {
        /// The joined ballot.
        ballot: Ballot,
        /// Previously accepted values: slot → (ballot, command).
        accepted: BTreeMap<Slot, (Ballot, C)>,
    },
    /// Phase 2a: the leader asks acceptors to accept `cmd` in `slot`.
    Accept {
        /// The leader's ballot.
        ballot: Ballot,
        /// The log slot.
        slot: Slot,
        /// The command.
        cmd: C,
    },
    /// Phase 2b: an acceptor accepted the proposal for `slot` in `ballot`.
    Accepted {
        /// The acceptor's ballot.
        ballot: Ballot,
        /// The log slot.
        slot: Slot,
    },
    /// The leader announces that the command in `slot` has been chosen.
    /// (The classic "learn"/commit message; it keeps followers' logs moving
    /// without a broadcast of every 2b message.)
    Chosen {
        /// The log slot.
        slot: Slot,
        /// The chosen command.
        cmd: C,
    },
    /// Batched phase 2a: the leader asks acceptors to accept a run of
    /// commands in consecutive slots starting at `start_slot`, in one wire
    /// message. Semantically equivalent to one [`PaxosMsg::Accept`] per
    /// command; produced by [`PaxosReplica::propose_all`] to amortise the
    /// per-command consensus cost under batched workloads.
    AcceptMany {
        /// The leader's ballot.
        ballot: Ballot,
        /// The first slot of the run.
        start_slot: Slot,
        /// The commands, occupying `start_slot..start_slot + cmds.len()`.
        cmds: Vec<C>,
    },
    /// Batched phase 2b: the acceptor accepted the whole run.
    AcceptedMany {
        /// The acceptor's ballot.
        ballot: Ballot,
        /// The first slot of the accepted run.
        start_slot: Slot,
        /// Number of consecutive slots accepted.
        count: u64,
    },
    /// Batched learn message: several `(slot, command)` decisions at once.
    ChosenMany {
        /// The chosen commands and their slots.
        entries: Vec<(Slot, C)>,
    },
}

/// Configuration of one Paxos replica.
#[derive(Debug, Clone)]
pub struct PaxosConfig {
    /// This replica's identity.
    pub id: ProcessId,
    /// All members of the replication group, in configuration order. The
    /// first member is the initial leader and may skip phase 1 for ballot
    /// `(1, leader)` — the standard multi-Paxos optimisation.
    pub members: Vec<ProcessId>,
}

impl PaxosConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `members` does not contain `id` or is empty.
    pub fn new(id: ProcessId, members: Vec<ProcessId>) -> Self {
        assert!(!members.is_empty(), "paxos group must have members");
        assert!(members.contains(&id), "replica must belong to the group");
        PaxosConfig { id, members }
    }

    /// Quorum size (majority) of the group.
    pub fn quorum(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// The initial leader (first member).
    pub fn initial_leader(&self) -> ProcessId {
        self.members[0]
    }
}

/// The result of feeding an event into a [`PaxosReplica`].
#[derive(Debug, Clone, PartialEq)]
pub struct PaxosOutput<C> {
    /// Messages to send, as `(recipient, message)` pairs.
    pub outgoing: Vec<(ProcessId, PaxosMsg<C>)>,
    /// Commands newly decided, in log order. A command is reported exactly
    /// once, and only when every lower slot has also been decided.
    pub decided: Vec<(Slot, C)>,
}

impl<C> Default for PaxosOutput<C> {
    fn default() -> Self {
        PaxosOutput {
            outgoing: Vec::new(),
            decided: Vec::new(),
        }
    }
}

impl<C> PaxosOutput<C> {
    fn merge(&mut self, other: PaxosOutput<C>) {
        self.outgoing.extend(other.outgoing);
        self.decided.extend(other.decided);
    }
}

/// One member of a multi-Paxos replication group (proposer + acceptor +
/// learner in a single object, as in practical Paxos deployments).
#[derive(Debug, Clone)]
pub struct PaxosReplica<C> {
    config: PaxosConfig,
    /// Acceptor state: the highest ballot joined.
    promised: Ballot,
    /// Acceptor state: accepted proposals per slot.
    accepted: BTreeMap<Slot, (Ballot, C)>,
    /// Leader state: the ballot we lead, if we believe we are the leader.
    leading: Option<Ballot>,
    /// Leader state: next free slot.
    next_slot: Slot,
    /// Leader state: acknowledgements per slot.
    acks: BTreeMap<Slot, BTreeSet<ProcessId>>,
    /// Leader state: proposals in flight (needed to re-send and to learn).
    in_flight: BTreeMap<Slot, C>,
    /// Phase-1 state when establishing leadership.
    promises: BTreeMap<ProcessId, BTreeMap<Slot, (Ballot, C)>>,
    campaigning: Option<Ballot>,
    /// Learner state: chosen commands.
    chosen: BTreeMap<Slot, C>,
    /// Learner state: next slot to report as decided (everything below is
    /// already reported).
    next_to_decide: Slot,
    /// Log-compaction frontier: every slot below it has been discarded from
    /// the acceptor/learner state (its effects live on in the embedding
    /// protocol's checkpoint). Slots below the frontier are never re-accepted
    /// or re-reported.
    compacted_below: Slot,
}

impl<C: Clone + PartialEq> PaxosReplica<C> {
    /// Creates a replica. The initial leader (first member) starts leading
    /// ballot `(1, leader)`; everyone else starts as a follower of that ballot.
    pub fn new(config: PaxosConfig) -> Self {
        let initial_ballot = Ballot::new(1, config.initial_leader());
        let leading = if config.id == config.initial_leader() {
            Some(initial_ballot)
        } else {
            None
        };
        PaxosReplica {
            promised: initial_ballot,
            accepted: BTreeMap::new(),
            leading,
            next_slot: 0,
            acks: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            promises: BTreeMap::new(),
            campaigning: None,
            chosen: BTreeMap::new(),
            next_to_decide: 0,
            compacted_below: 0,
            config,
        }
    }

    /// Whether this replica currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.leading.is_some()
    }

    /// The ballot this replica leads, if any.
    pub fn leading_ballot(&self) -> Option<Ballot> {
        self.leading
    }

    /// Number of log slots decided so far.
    pub fn decided_len(&self) -> Slot {
        self.next_to_decide
    }

    /// The chosen command in a slot, if the replica has learnt it.
    pub fn chosen_in(&self, slot: Slot) -> Option<&C> {
        self.chosen.get(&slot)
    }

    /// The compaction frontier: slots below it have been discarded.
    pub fn compacted_below(&self) -> Slot {
        self.compacted_below
    }

    /// Number of log entries currently resident (acceptor + learner state) —
    /// the quantity bounded by compaction.
    pub fn log_len(&self) -> usize {
        self.accepted.len().max(self.chosen.len())
    }

    /// Discards every log slot below `slot` from the acceptor and learner
    /// state. The caller must guarantee the prefix is *globally stable* —
    /// decided everywhere it matters and captured in a checkpoint — because a
    /// peer can never re-learn a compacted slot from this replica again; it
    /// recovers via checkpoint-based state transfer instead
    /// ([`Self::install_snapshot`]). Slots at or above `next_to_decide` are
    /// never discarded (compacting an undecided suffix would lose data), so
    /// the effective frontier is `min(slot, next_to_decide)`.
    pub fn compact_below(&mut self, slot: Slot) {
        let frontier = slot.min(self.next_to_decide).max(self.compacted_below);
        self.compacted_below = frontier;
        self.accepted = self.accepted.split_off(&frontier);
        self.chosen = self.chosen.split_off(&frontier);
        self.in_flight = self.in_flight.split_off(&frontier);
        self.acks = self.acks.split_off(&frontier);
    }

    /// The resident chosen suffix (`compacted_below..`), for building a
    /// catch-up state transfer for a lagging peer.
    pub fn chosen_suffix(&self) -> Vec<(Slot, C)> {
        self.chosen
            .iter()
            .map(|(slot, cmd)| (*slot, cmd.clone()))
            .collect()
    }

    /// Installs a catch-up snapshot from a peer: jumps the decision frontier
    /// to `frontier` (everything below is covered by the accompanying
    /// checkpoint) and learns the peer's chosen suffix. Newly contiguous
    /// decisions are reported in the output exactly once, like any other
    /// decision. A stale snapshot (frontier at or below our own progress)
    /// only merges the entries.
    pub fn install_snapshot(&mut self, frontier: Slot, entries: Vec<(Slot, C)>) -> PaxosOutput<C> {
        let mut out = PaxosOutput::default();
        if frontier > self.next_to_decide {
            self.next_to_decide = frontier;
            self.compacted_below = self.compacted_below.max(frontier);
            self.accepted = self.accepted.split_off(&frontier);
            self.chosen = self.chosen.split_off(&frontier);
        }
        for (slot, cmd) in entries {
            if slot < self.compacted_below {
                continue;
            }
            out.merge(self.on_chosen(slot, cmd));
        }
        out
    }

    /// Starts a leadership campaign: picks a ballot above `promised` led by
    /// this replica and sends `PREPARE` to all members.
    pub fn campaign(&mut self) -> PaxosOutput<C> {
        let ballot = self.promised.next_for(self.config.id);
        self.campaigning = Some(ballot);
        self.promises.clear();
        let outgoing = self
            .config
            .members
            .iter()
            .map(|m| (*m, PaxosMsg::Prepare { ballot }))
            .collect();
        PaxosOutput {
            outgoing,
            decided: Vec::new(),
        }
    }

    /// Proposes a command for the next free slot. Only meaningful at the
    /// leader; at a follower the command is dropped and an empty output
    /// returned (callers should forward to the leader instead).
    pub fn propose(&mut self, cmd: C) -> PaxosOutput<C> {
        let Some(ballot) = self.leading else {
            return PaxosOutput::default();
        };
        let slot = self.next_slot;
        self.next_slot += 1;
        self.in_flight.insert(slot, cmd.clone());
        let outgoing = self
            .config
            .members
            .iter()
            .map(|m| {
                (
                    *m,
                    PaxosMsg::Accept {
                        ballot,
                        slot,
                        cmd: cmd.clone(),
                    },
                )
            })
            .collect();
        PaxosOutput {
            outgoing,
            decided: Vec::new(),
        }
    }

    /// Proposes a run of commands for consecutive slots with a single
    /// `ACCEPT_MANY` per member — the batched equivalent of calling
    /// [`propose`](Self::propose) once per command, at a fraction of the wire
    /// and CPU cost. Only meaningful at the leader; followers drop the batch.
    pub fn propose_all(&mut self, cmds: Vec<C>) -> PaxosOutput<C> {
        let Some(ballot) = self.leading else {
            return PaxosOutput::default();
        };
        if cmds.is_empty() {
            return PaxosOutput::default();
        }
        let start_slot = self.next_slot;
        self.next_slot += cmds.len() as Slot;
        for (i, cmd) in cmds.iter().enumerate() {
            self.in_flight.insert(start_slot + i as Slot, cmd.clone());
        }
        let outgoing = self
            .config
            .members
            .iter()
            .map(|m| {
                (
                    *m,
                    PaxosMsg::AcceptMany {
                        ballot,
                        start_slot,
                        cmds: cmds.clone(),
                    },
                )
            })
            .collect();
        PaxosOutput {
            outgoing,
            decided: Vec::new(),
        }
    }

    /// Handles a Paxos message from `from`.
    pub fn handle(&mut self, from: ProcessId, msg: PaxosMsg<C>) -> PaxosOutput<C> {
        match msg {
            PaxosMsg::Prepare { ballot } => self.on_prepare(from, ballot),
            PaxosMsg::Promise { ballot, accepted } => self.on_promise(from, ballot, accepted),
            PaxosMsg::Accept { ballot, slot, cmd } => self.on_accept(from, ballot, slot, cmd),
            PaxosMsg::Accepted { ballot, slot } => self.on_accepted(from, ballot, slot),
            PaxosMsg::Chosen { slot, cmd } => self.on_chosen(slot, cmd),
            PaxosMsg::AcceptMany {
                ballot,
                start_slot,
                cmds,
            } => self.on_accept_many(from, ballot, start_slot, cmds),
            PaxosMsg::AcceptedMany {
                ballot,
                start_slot,
                count,
            } => self.on_accepted_many(from, ballot, start_slot, count),
            PaxosMsg::ChosenMany { entries } => {
                let mut out = PaxosOutput::default();
                for (slot, cmd) in entries {
                    out.merge(self.on_chosen(slot, cmd));
                }
                out
            }
        }
    }

    fn on_prepare(&mut self, from: ProcessId, ballot: Ballot) -> PaxosOutput<C> {
        let mut out = PaxosOutput::default();
        if ballot <= self.promised {
            return out;
        }
        self.promised = ballot;
        // A higher ballot deposes us if we were leading a lower one.
        if self.leading.map(|b| b < ballot).unwrap_or(false) {
            self.leading = None;
        }
        out.outgoing.push((
            from,
            PaxosMsg::Promise {
                ballot,
                accepted: self.accepted.clone(),
            },
        ));
        out
    }

    fn on_promise(
        &mut self,
        from: ProcessId,
        ballot: Ballot,
        accepted: BTreeMap<Slot, (Ballot, C)>,
    ) -> PaxosOutput<C> {
        let mut out = PaxosOutput::default();
        if self.campaigning != Some(ballot) {
            return out;
        }
        self.promises.insert(from, accepted);
        if self.promises.len() < self.config.quorum() {
            return out;
        }
        // Quorum of promises: adopt, for every slot, the value accepted at the
        // highest ballot; re-propose them under our ballot.
        self.campaigning = None;
        self.leading = Some(ballot);
        let mut adopted: BTreeMap<Slot, (Ballot, C)> = BTreeMap::new();
        for acc in self.promises.values() {
            for (slot, (b, cmd)) in acc {
                match adopted.get(slot) {
                    Some((existing, _)) if existing >= b => {}
                    _ => {
                        adopted.insert(*slot, (*b, cmd.clone()));
                    }
                }
            }
        }
        let max_slot = adopted.keys().max().copied();
        if let Some(max_slot) = max_slot {
            self.next_slot = self.next_slot.max(max_slot + 1);
        }
        for (slot, (_, cmd)) in adopted {
            self.in_flight.insert(slot, cmd.clone());
            self.acks.remove(&slot);
            for m in &self.config.members {
                out.outgoing.push((
                    *m,
                    PaxosMsg::Accept {
                        ballot,
                        slot,
                        cmd: cmd.clone(),
                    },
                ));
            }
        }
        out
    }

    fn on_accept(&mut self, from: ProcessId, ballot: Ballot, slot: Slot, cmd: C) -> PaxosOutput<C> {
        let mut out = PaxosOutput::default();
        if ballot < self.promised {
            return out;
        }
        self.promised = ballot;
        if slot < self.compacted_below {
            // The slot was compacted away: it is decided and its effect is
            // captured in a checkpoint. Acknowledge so a retrying leader
            // makes progress, but store nothing.
            out.outgoing
                .push((from, PaxosMsg::Accepted { ballot, slot }));
            return out;
        }
        self.accepted.insert(slot, (ballot, cmd));
        out.outgoing
            .push((from, PaxosMsg::Accepted { ballot, slot }));
        out
    }

    /// Registers a 2b vote and returns the newly chosen `(slot, command)`, if
    /// the vote completed a quorum.
    fn note_accepted(&mut self, from: ProcessId, ballot: Ballot, slot: Slot) -> Option<(Slot, C)> {
        if self.leading != Some(ballot) {
            return None;
        }
        let ackers = self.acks.entry(slot).or_default();
        ackers.insert(from);
        if ackers.len() != self.config.quorum() {
            return None;
        }
        self.in_flight.get(&slot).cloned().map(|cmd| (slot, cmd))
    }

    fn on_accepted(&mut self, from: ProcessId, ballot: Ballot, slot: Slot) -> PaxosOutput<C> {
        let mut out = PaxosOutput::default();
        let Some((slot, cmd)) = self.note_accepted(from, ballot, slot) else {
            return out;
        };
        // Newly chosen: tell everyone (including ourselves, handled inline).
        let members = self.config.members.clone();
        let own_id = self.config.id;
        for m in members {
            if m == own_id {
                out.merge(self.on_chosen(slot, cmd.clone()));
            } else {
                out.outgoing.push((
                    m,
                    PaxosMsg::Chosen {
                        slot,
                        cmd: cmd.clone(),
                    },
                ));
            }
        }
        out
    }

    fn on_accept_many(
        &mut self,
        from: ProcessId,
        ballot: Ballot,
        start_slot: Slot,
        cmds: Vec<C>,
    ) -> PaxosOutput<C> {
        let mut out = PaxosOutput::default();
        if ballot < self.promised {
            return out;
        }
        self.promised = ballot;
        let count = cmds.len() as u64;
        for (i, cmd) in cmds.into_iter().enumerate() {
            let slot = start_slot + i as Slot;
            if slot < self.compacted_below {
                continue;
            }
            self.accepted.insert(slot, (ballot, cmd));
        }
        out.outgoing.push((
            from,
            PaxosMsg::AcceptedMany {
                ballot,
                start_slot,
                count,
            },
        ));
        out
    }

    fn on_accepted_many(
        &mut self,
        from: ProcessId,
        ballot: Ballot,
        start_slot: Slot,
        count: u64,
    ) -> PaxosOutput<C> {
        let mut out = PaxosOutput::default();
        let mut newly_chosen: Vec<(Slot, C)> = Vec::new();
        for slot in start_slot..start_slot + count {
            if let Some(chosen) = self.note_accepted(from, ballot, slot) {
                newly_chosen.push(chosen);
            }
        }
        if newly_chosen.is_empty() {
            return out;
        }
        // Tell everyone about the whole run at once.
        let members = self.config.members.clone();
        let own_id = self.config.id;
        for m in members {
            if m == own_id {
                for (slot, cmd) in &newly_chosen {
                    out.merge(self.on_chosen(*slot, cmd.clone()));
                }
            } else {
                out.outgoing.push((
                    m,
                    PaxosMsg::ChosenMany {
                        entries: newly_chosen.clone(),
                    },
                ));
            }
        }
        out
    }

    fn on_chosen(&mut self, slot: Slot, cmd: C) -> PaxosOutput<C> {
        let mut out = PaxosOutput::default();
        if slot < self.compacted_below {
            // Already compacted: decided long ago, nothing left to learn.
            return out;
        }
        self.chosen.entry(slot).or_insert(cmd);
        while let Some(cmd) = self.chosen.get(&self.next_to_decide) {
            out.decided.push((self.next_to_decide, cmd.clone()));
            self.next_to_decide += 1;
        }
        out
    }
}

mod node;
pub use node::{PaxosNode, PaxosNodeMsg};

#[cfg(test)]
mod tests {
    use super::*;

    fn members() -> Vec<ProcessId> {
        vec![ProcessId(0), ProcessId(1), ProcessId(2)]
    }

    fn trio() -> (
        PaxosReplica<String>,
        PaxosReplica<String>,
        PaxosReplica<String>,
    ) {
        (
            PaxosReplica::new(PaxosConfig::new(ProcessId(0), members())),
            PaxosReplica::new(PaxosConfig::new(ProcessId(1), members())),
            PaxosReplica::new(PaxosConfig::new(ProcessId(2), members())),
        )
    }

    /// Routes messages among the three replicas until quiescent; returns all
    /// decided commands per replica.
    fn run_to_quiescence(
        replicas: &mut [&mut PaxosReplica<String>],
        mut pending: Vec<(ProcessId, ProcessId, PaxosMsg<String>)>,
    ) -> Vec<Vec<(Slot, String)>> {
        let mut decided: Vec<Vec<(Slot, String)>> = vec![Vec::new(); replicas.len()];
        while let Some((from, to, msg)) = pending.pop() {
            let idx = to.0 as usize;
            let out = replicas[idx].handle(from, msg);
            for (slot, cmd) in out.decided {
                decided[idx].push((slot, cmd));
            }
            for (recipient, m) in out.outgoing {
                pending.push((to, recipient, m));
            }
        }
        decided
    }

    #[test]
    fn config_quorum_and_leader() {
        let cfg = PaxosConfig::new(ProcessId(1), members());
        assert_eq!(cfg.quorum(), 2);
        assert_eq!(cfg.initial_leader(), ProcessId(0));
    }

    #[test]
    #[should_panic(expected = "belong")]
    fn config_rejects_foreign_replica() {
        let _ = PaxosConfig::new(ProcessId(9), members());
    }

    #[test]
    fn initial_leader_can_propose_immediately() {
        let (mut p0, _, _) = trio();
        assert!(p0.is_leader());
        let out = p0.propose("a".to_string());
        assert_eq!(out.outgoing.len(), 3);
        assert!(out.decided.is_empty());
    }

    #[test]
    fn followers_cannot_propose() {
        let (_, mut p1, _) = trio();
        assert!(!p1.is_leader());
        let out = p1.propose("a".to_string());
        assert!(out.outgoing.is_empty());
    }

    #[test]
    fn command_is_decided_at_all_replicas_in_order() {
        let (mut p0, mut p1, mut p2) = trio();
        let mut pending = Vec::new();
        for cmd in ["a", "b", "c"] {
            for (to, msg) in p0.propose(cmd.to_string()).outgoing {
                pending.push((ProcessId(0), to, msg));
            }
        }
        let decided = run_to_quiescence(&mut [&mut p0, &mut p1, &mut p2], pending);
        for d in &decided {
            let cmds: Vec<&str> = d.iter().map(|(_, c)| c.as_str()).collect();
            assert_eq!(cmds, vec!["a", "b", "c"]);
            let slots: Vec<Slot> = d.iter().map(|(s, _)| *s).collect();
            assert_eq!(slots, vec![0, 1, 2]);
        }
        assert_eq!(p0.decided_len(), 3);
        assert_eq!(p1.chosen_in(1), Some(&"b".to_string()));
    }

    #[test]
    fn decisions_are_reported_once_and_contiguously() {
        let (mut p0, mut p1, mut p2) = trio();
        let out1 = p0.propose("a".to_string());
        let out2 = p0.propose("b".to_string());
        // Deliver slot 1's messages first: nothing should be decided until
        // slot 0 is also chosen.
        let mut pending = Vec::new();
        for (to, msg) in out2.outgoing {
            pending.push((ProcessId(0), to, msg));
        }
        let decided_early = run_to_quiescence(&mut [&mut p0, &mut p1, &mut p2], pending);
        assert!(decided_early.iter().all(|d| d.is_empty()));
        let mut pending = Vec::new();
        for (to, msg) in out1.outgoing {
            pending.push((ProcessId(0), to, msg));
        }
        let decided_late = run_to_quiescence(&mut [&mut p0, &mut p1, &mut p2], pending);
        // Now both slots are reported, in order.
        for d in decided_late {
            let cmds: Vec<&str> = d.iter().map(|(_, c)| c.as_str()).collect();
            assert_eq!(cmds, vec!["a", "b"]);
        }
    }

    #[test]
    fn batched_proposal_is_decided_everywhere_in_order() {
        let (mut p0, mut p1, mut p2) = trio();
        let out = p0.propose_all(vec!["a".to_string(), "b".to_string(), "c".to_string()]);
        assert_eq!(out.outgoing.len(), 3, "one ACCEPT_MANY per member");
        let mut pending = Vec::new();
        for (to, msg) in out.outgoing {
            pending.push((ProcessId(0), to, msg));
        }
        let decided = run_to_quiescence(&mut [&mut p0, &mut p1, &mut p2], pending);
        for d in &decided {
            let cmds: Vec<&str> = d.iter().map(|(_, c)| c.as_str()).collect();
            assert_eq!(cmds, vec!["a", "b", "c"]);
            let slots: Vec<Slot> = d.iter().map(|(s, _)| *s).collect();
            assert_eq!(slots, vec![0, 1, 2]);
        }
    }

    #[test]
    fn batched_and_single_proposals_share_the_log() {
        let (mut p0, mut p1, mut p2) = trio();
        let mut pending = Vec::new();
        for (to, msg) in p0.propose("a".to_string()).outgoing {
            pending.push((ProcessId(0), to, msg));
        }
        for (to, msg) in p0
            .propose_all(vec!["b".to_string(), "c".to_string()])
            .outgoing
        {
            pending.push((ProcessId(0), to, msg));
        }
        for (to, msg) in p0.propose("d".to_string()).outgoing {
            pending.push((ProcessId(0), to, msg));
        }
        let decided = run_to_quiescence(&mut [&mut p0, &mut p1, &mut p2], pending);
        for d in &decided {
            let cmds: Vec<&str> = d.iter().map(|(_, c)| c.as_str()).collect();
            assert_eq!(cmds, vec!["a", "b", "c", "d"]);
        }
    }

    #[test]
    fn followers_drop_batched_proposals() {
        let (_, mut p1, _) = trio();
        let out = p1.propose_all(vec!["a".to_string()]);
        assert!(out.outgoing.is_empty());
        let (mut p0, _, _) = trio();
        assert!(p0.propose_all(Vec::new()).outgoing.is_empty());
    }

    #[test]
    fn stale_ballot_accept_many_is_rejected() {
        let (_, mut p1, _) = trio();
        p1.handle(
            ProcessId(2),
            PaxosMsg::Prepare {
                ballot: Ballot::new(5, ProcessId(2)),
            },
        );
        let out = p1.handle(
            ProcessId(0),
            PaxosMsg::AcceptMany {
                ballot: Ballot::new(1, ProcessId(0)),
                start_slot: 0,
                cmds: vec!["x".to_string()],
            },
        );
        assert!(out.outgoing.is_empty());
    }

    #[test]
    fn stale_ballot_accept_is_rejected() {
        let (_, mut p1, _) = trio();
        // p1 promises ballot (2, p1) to itself via a campaign from p2.
        let out = p1.handle(
            ProcessId(2),
            PaxosMsg::Prepare {
                ballot: Ballot::new(5, ProcessId(2)),
            },
        );
        assert_eq!(out.outgoing.len(), 1);
        // An ACCEPT from the old leader's ballot is now rejected.
        let out = p1.handle(
            ProcessId(0),
            PaxosMsg::Accept {
                ballot: Ballot::new(1, ProcessId(0)),
                slot: 0,
                cmd: "x".to_string(),
            },
        );
        assert!(out.outgoing.is_empty());
    }

    #[test]
    fn campaign_recovers_accepted_values() {
        let (mut p0, mut p1, mut p2) = trio();
        // p0 proposes "a"; only p1 accepts it (p2 never hears the 2a).
        let out = p0.propose("a".to_string());
        let accept_for_p1 = out
            .outgoing
            .iter()
            .find(|(to, _)| *to == ProcessId(1))
            .cloned()
            .unwrap();
        p1.handle(ProcessId(0), accept_for_p1.1);
        // p1 campaigns; p1 + p2 form a quorum of promises.
        let campaign = p1.campaign();
        let mut promises: Vec<(ProcessId, PaxosMsg<String>)> = Vec::new();
        for (to, msg) in campaign.outgoing {
            let reply = match to {
                ProcessId(1) => p1.handle(ProcessId(1), msg),
                ProcessId(2) => p2.handle(ProcessId(1), msg),
                _ => PaxosOutput::default(), // p0 is "crashed"
            };
            promises.extend(reply.outgoing.into_iter().map(|(_, m)| (to, m)));
        }
        let mut out = PaxosOutput::default();
        for (sender, msg) in promises {
            // The promise carries the sender's previously accepted values.
            out.merge(p1.handle(sender, msg));
        }
        assert!(p1.is_leader());
        // The new leader re-proposes "a" for slot 0 under its own ballot.
        let reproposed = out
            .outgoing
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Accept { slot: 0, cmd, .. } if cmd == "a"));
        assert!(
            reproposed,
            "accepted value must be re-proposed by the new leader"
        );
    }

    #[test]
    fn compaction_discards_the_prefix_and_keeps_deciding() {
        let (mut p0, mut p1, mut p2) = trio();
        let mut pending = Vec::new();
        for cmd in ["a", "b", "c", "d"] {
            for (to, msg) in p0.propose(cmd.to_string()).outgoing {
                pending.push((ProcessId(0), to, msg));
            }
        }
        run_to_quiescence(&mut [&mut p0, &mut p1, &mut p2], pending);
        assert_eq!(p0.decided_len(), 4);
        assert_eq!(p0.log_len(), 4);
        p0.compact_below(3);
        assert_eq!(p0.compacted_below(), 3);
        assert_eq!(p0.log_len(), 1, "only slot 3 remains resident");
        assert_eq!(p0.chosen_in(1), None);
        assert_eq!(p0.chosen_in(3), Some(&"d".to_string()));
        // A late Chosen for a compacted slot is ignored, not resurrected.
        let out = p0.handle(
            ProcessId(1),
            PaxosMsg::Chosen {
                slot: 0,
                cmd: "a".to_string(),
            },
        );
        assert!(out.decided.is_empty());
        assert_eq!(p0.log_len(), 1);
        // New proposals keep working after compaction.
        let mut pending = Vec::new();
        for (to, msg) in p0.propose("e".to_string()).outgoing {
            pending.push((ProcessId(0), to, msg));
        }
        let decided = run_to_quiescence(&mut [&mut p0, &mut p1, &mut p2], pending);
        assert!(decided[0]
            .iter()
            .any(|(slot, cmd)| *slot == 4 && cmd == "e"));
    }

    #[test]
    fn compaction_never_outruns_the_decision_frontier() {
        let (mut p0, _, _) = trio();
        p0.propose("a".to_string());
        // Nothing decided yet: compacting "below 10" must be clamped to 0.
        p0.compact_below(10);
        assert_eq!(p0.compacted_below(), 0);
    }

    #[test]
    fn install_snapshot_jumps_a_lagging_learner_forward() {
        let (_, mut p1, _) = trio();
        // p1 missed slots 0..3 which the leader has compacted; it receives a
        // catch-up: frontier 3 plus the resident suffix.
        let out = p1.install_snapshot(3, vec![(3, "d".to_string()), (4, "e".to_string())]);
        assert_eq!(
            out.decided,
            vec![(3, "d".to_string()), (4, "e".to_string())],
            "the suffix is decided contiguously after the jump"
        );
        assert_eq!(p1.decided_len(), 5);
        assert_eq!(p1.compacted_below(), 3);
        // Entries below the frontier in a later (stale) snapshot are ignored.
        let out = p1.install_snapshot(3, vec![(0, "a".to_string())]);
        assert!(out.decided.is_empty());
    }

    #[test]
    fn chosen_messages_bring_followers_up_to_date() {
        let (_, mut p1, _) = trio();
        let out = p1.handle(
            ProcessId(0),
            PaxosMsg::Chosen {
                slot: 0,
                cmd: "a".to_string(),
            },
        );
        assert_eq!(out.decided, vec![(0, "a".to_string())]);
        // Duplicate Chosen is harmless.
        let out = p1.handle(
            ProcessId(0),
            PaxosMsg::Chosen {
                slot: 0,
                cmd: "a".to_string(),
            },
        );
        assert!(out.decided.is_empty());
    }
}
