//! Events consumed by sans-IO protocol state machines.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::ids::ProcessId;
use crate::message::AppMessage;
use crate::node::TimerId;

/// An input event for a protocol node, parameterised by the protocol's wire
/// message type `M`.
///
/// Events are produced by a runtime — either the deterministic simulator in
/// `wbam-simnet` or the threaded runtime in `wbam-runtime` — and fed to
/// [`Node::on_event`](crate::Node::on_event). The node reacts by returning a
/// list of [`Action`](crate::Action)s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event<M> {
    /// The node has been started; fired exactly once before any other event.
    Init,
    /// A protocol message arrived from another process over a reliable FIFO
    /// channel.
    Message {
        /// The sending process.
        from: ProcessId,
        /// The protocol message.
        msg: M,
    },
    /// A previously requested timer fired.
    Timer {
        /// The timer that fired.
        id: TimerId,
        /// The time since node start at which the timer fired.
        now: Duration,
    },
    /// The local application asks this node to multicast `m` to `m.dest`.
    ///
    /// For client nodes this corresponds to invoking `multicast(m)` (Figure 4
    /// line 1); replica nodes typically never receive it.
    Multicast(AppMessage),
    /// An external oracle (failure detector / membership service) tells this
    /// node that it should consider itself the leader of its group and start
    /// recovery. Corresponds to invoking `recover()` (Figure 4 line 35).
    BecomeLeader,
    /// The node's process crashed and has come back up with its durable state
    /// intact (everything a synchronously persisting implementation would
    /// recover from its log). Volatile context was lost with the crash —
    /// armed timers never fire, and messages that arrived during the downtime
    /// were dropped (messages still in flight at the restart are delivered
    /// like any delayed packet). The node should discard purely in-memory
    /// bookkeeping, re-arm the timers it needs, and rejoin the protocol. The
    /// paper's model is crash-stop (§II); restart is our extension for fault
    /// exploration.
    Restart,
}

impl<M> Event<M> {
    /// Whether the event is a protocol message.
    pub fn is_message(&self) -> bool {
        matches!(self, Event::Message { .. })
    }

    /// Convenient constructor for message events.
    pub fn message(from: ProcessId, msg: M) -> Self {
        Event::Message { from, msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GroupId, MsgId};
    use crate::message::{Destination, Payload};

    #[test]
    fn message_constructor_and_predicate() {
        let e: Event<u32> = Event::message(ProcessId(1), 42);
        assert!(e.is_message());
        assert!(!Event::<u32>::Init.is_message());
    }

    #[test]
    fn multicast_event_carries_app_message() {
        let m = AppMessage::new(
            MsgId::new(ProcessId(5), 0),
            Destination::single(GroupId(0)),
            Payload::from("x"),
        );
        let e: Event<u32> = Event::Multicast(m.clone());
        match e {
            Event::Multicast(inner) => assert_eq!(inner, m),
            _ => panic!("expected multicast event"),
        }
    }

    #[test]
    fn events_round_trip_through_serde() {
        let e: Event<String> = Event::Message {
            from: ProcessId(3),
            msg: "hello".to_string(),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Event<String> = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
