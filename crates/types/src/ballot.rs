//! Leader ballots.
//!
//! A period of time when a particular process acts as the leader of its group
//! is denoted by a ballot `(n, p)` — a pair of an integer and the process
//! identifier (paper §IV, "Preliminaries"). Ballots are ordered
//! lexicographically with a distinguished minimal ballot `⊥`. The same type is
//! used by the Paxos substrate in `wbam-consensus`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::ProcessId;

/// A ballot `(n, p) ∈ N × P`, with a distinguished minimum `⊥`.
///
/// ```
/// use wbam_types::{Ballot, ProcessId};
///
/// let b1 = Ballot::new(1, ProcessId(5));
/// let b2 = Ballot::new(2, ProcessId(0));
/// assert!(Ballot::BOTTOM < b1);
/// assert!(b1 < b2);
/// assert_eq!(b2.leader(), Some(ProcessId(0)));
/// assert_eq!(b1.next_for(ProcessId(0)), Ballot::new(2, ProcessId(0)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Ballot {
    /// The minimal ballot `⊥`; no process ever leads it.
    #[default]
    Bottom,
    /// A proper ballot `(round, leader)`.
    Proper {
        /// Round number.
        round: u64,
        /// The process leading this ballot (`leader(b)` in the paper).
        leader: ProcessId,
    },
}

impl Ballot {
    /// The minimal ballot `⊥`.
    pub const BOTTOM: Ballot = Ballot::Bottom;

    /// Creates a proper ballot.
    pub fn new(round: u64, leader: ProcessId) -> Self {
        Ballot::Proper { round, leader }
    }

    /// The round component of the ballot; `0` for `⊥`.
    pub fn round(self) -> u64 {
        match self {
            Ballot::Bottom => 0,
            Ballot::Proper { round, .. } => round,
        }
    }

    /// The process leading the ballot (`leader(b)`), if the ballot is proper.
    pub fn leader(self) -> Option<ProcessId> {
        match self {
            Ballot::Bottom => None,
            Ballot::Proper { leader, .. } => Some(leader),
        }
    }

    /// Whether this ballot is the minimal ballot `⊥`.
    pub fn is_bottom(self) -> bool {
        matches!(self, Ballot::Bottom)
    }

    /// Whether the given process leads this ballot.
    pub fn is_led_by(self, p: ProcessId) -> bool {
        self.leader() == Some(p)
    }

    /// The smallest ballot led by `p` that is strictly greater than `self`.
    ///
    /// Used when a newly elected leader picks "any ballot of the form `(_, pi)`
    /// higher than `ballot`" (paper Figure 4, line 36).
    pub fn next_for(self, p: ProcessId) -> Ballot {
        let round = match self {
            Ballot::Bottom => 1,
            Ballot::Proper { round, leader } => {
                if p > leader {
                    // (round, p) > (round, leader) already.
                    round
                } else {
                    round + 1
                }
            }
        };
        let candidate = Ballot::new(round, p);
        debug_assert!(candidate > self);
        candidate
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ballot::Bottom => write!(f, "⊥"),
            Ballot::Proper { round, leader } => write!(f, "({round},{leader})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bottom_is_minimal() {
        assert!(Ballot::BOTTOM < Ballot::new(0, ProcessId(0)));
        assert!(Ballot::BOTTOM.is_bottom());
        assert_eq!(Ballot::default(), Ballot::BOTTOM);
        assert_eq!(Ballot::BOTTOM.leader(), None);
        assert_eq!(Ballot::BOTTOM.round(), 0);
    }

    #[test]
    fn lexicographic_order() {
        let a = Ballot::new(1, ProcessId(9));
        let b = Ballot::new(2, ProcessId(0));
        assert!(a < b);
        assert!(Ballot::new(1, ProcessId(1)) < Ballot::new(1, ProcessId(2)));
    }

    #[test]
    fn leadership() {
        let b = Ballot::new(3, ProcessId(4));
        assert!(b.is_led_by(ProcessId(4)));
        assert!(!b.is_led_by(ProcessId(5)));
        assert_eq!(b.leader(), Some(ProcessId(4)));
        assert_eq!(b.round(), 3);
    }

    #[test]
    fn next_for_is_strictly_greater_and_led_by_p() {
        let b = Ballot::new(3, ProcessId(4));
        let n1 = b.next_for(ProcessId(2));
        assert!(n1 > b);
        assert!(n1.is_led_by(ProcessId(2)));
        assert_eq!(n1.round(), 4);

        let n2 = b.next_for(ProcessId(9));
        assert!(n2 > b);
        assert!(n2.is_led_by(ProcessId(9)));
        assert_eq!(n2.round(), 3);

        let n3 = Ballot::BOTTOM.next_for(ProcessId(0));
        assert!(n3 > Ballot::BOTTOM);
        assert!(n3.is_led_by(ProcessId(0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ballot::BOTTOM.to_string(), "⊥");
        assert_eq!(Ballot::new(2, ProcessId(7)).to_string(), "(2,p7)");
    }

    fn arb_ballot() -> impl Strategy<Value = Ballot> {
        prop_oneof![
            Just(Ballot::BOTTOM),
            (0u64..100, 0u32..32).prop_map(|(r, p)| Ballot::new(r, ProcessId(p))),
        ]
    }

    proptest! {
        /// `next_for` always produces a strictly greater ballot led by the caller.
        #[test]
        fn next_for_properties(b in arb_ballot(), p in 0u32..32) {
            let n = b.next_for(ProcessId(p));
            prop_assert!(n > b);
            prop_assert!(n.is_led_by(ProcessId(p)));
        }

        /// Ballot ordering matches tuple ordering for proper ballots.
        #[test]
        fn order_matches_tuple_order(
            r1 in 0u64..100, p1 in 0u32..32,
            r2 in 0u64..100, p2 in 0u32..32,
        ) {
            let a = Ballot::new(r1, ProcessId(p1));
            let b = Ballot::new(r2, ProcessId(p2));
            prop_assert_eq!(a.cmp(&b), (r1, p1).cmp(&(r2, p2)));
        }
    }
}
