//! Nemesis fault plans: seeded, deterministic descriptions of the faults a
//! runtime injects into a run.
//!
//! A [`NemesisPlan`] is pure data — which messages may be dropped, duplicated
//! or reordered, which network partitions open and heal when, which processes
//! crash (and possibly restart), and how much timers may jitter. The
//! deterministic simulator in `wbam-simnet` executes the plan using its own
//! seeded RNG, so a `(seed, plan)` pair reproduces the exact same schedule
//! byte for byte; the schedule explorer in `wbam-harness` derives whole plans
//! from a single seed and prints that seed as a replayable token when a run
//! violates an invariant.
//!
//! The paper's system model (§II) assumes reliable FIFO channels and
//! crash-stop failures. The nemesis deliberately steps outside it:
//!
//! * **Drops, duplicates and partitions** model *transient* loss. They leave
//!   safety untouched (a lost message is indistinguishable from a slow one)
//!   and the protocols' retry machinery recovers liveness once the fault
//!   window ([`NemesisPlan::chaos_end`]) closes.
//! * **Crash–restart** goes beyond crash-stop: a restarted process rejoins
//!   with its durable state (see `Event::Restart`).
//! * **Reordering** violates the FIFO channel assumption outright. It is
//!   available for exploring how the protocols degrade, but the explorer's
//!   randomized plans keep it off by default since FIFO is a stated
//!   correctness assumption, not an implementation obligation.

use std::time::Duration;

use crate::ids::ProcessId;

/// Probabilistic per-message link faults, applied independently to every
/// protocol message sent between two *distinct* processes while the chaos
/// window is open. Probabilities are expressed in permille (0–1000) so plans
/// are exactly representable and hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkFaults {
    /// Probability (‰) that a message is silently dropped.
    pub drop_per_mille: u16,
    /// Probability (‰) that a message is delivered twice. The duplicate is
    /// enqueued with an independently sampled delay but still respects the
    /// channel's FIFO clamp, so it models a retransmit-style stutter rather
    /// than reordering.
    pub duplicate_per_mille: u16,
    /// Probability (‰) that a message bypasses the FIFO clamp and is delayed
    /// by up to [`reorder_extra`](Self::reorder_extra), overtaking or being
    /// overtaken by its neighbours. **This violates the paper's FIFO channel
    /// assumption**; keep it at zero unless deliberately exploring beyond the
    /// model.
    pub reorder_per_mille: u16,
    /// Maximum extra delay added to a reordered message.
    pub reorder_extra: Duration,
}

impl LinkFaults {
    /// Whether any probabilistic link fault is enabled.
    pub fn any(&self) -> bool {
        self.drop_per_mille > 0 || self.duplicate_per_mille > 0 || self.reorder_per_mille > 0
    }
}

/// A network partition separating two sets of processes for a time window.
///
/// While `start <= now < heal`, messages from a process in `side_a` to a
/// process in `side_b` are dropped; if [`symmetric`](Self::symmetric), the
/// reverse direction is dropped too (an asymmetric partition models one-way
/// link failures, e.g. a broken uplink). Processes on neither side are
/// unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// When the partition opens.
    pub start: Duration,
    /// When the partition heals (exclusive).
    pub heal: Duration,
    /// One side of the cut.
    pub side_a: Vec<ProcessId>,
    /// The other side of the cut.
    pub side_b: Vec<ProcessId>,
    /// Whether traffic is blocked in both directions.
    pub symmetric: bool,
}

impl PartitionSpec {
    /// Whether this partition blocks a message sent from `from` to `to` at
    /// time `at`.
    pub fn blocks(&self, at: Duration, from: ProcessId, to: ProcessId) -> bool {
        if at < self.start || at >= self.heal {
            return false;
        }
        let a_to_b = self.side_a.contains(&from) && self.side_b.contains(&to);
        let b_to_a = self.side_b.contains(&from) && self.side_a.contains(&to);
        a_to_b || (self.symmetric && b_to_a)
    }
}

/// A scheduled crash of one process, optionally followed by a restart.
///
/// A restarted process rejoins with the state it held at the crash (modelling
/// synchronously persisted durable state) and receives an `Event::Restart`.
/// Everything volatile is lost: messages that arrive during the downtime are
/// dropped, and timers armed before the crash never fire. A message still in
/// flight when the process comes back up *is* delivered — the network may
/// hand a delayed packet to the new incarnation, and the protocols must (and
/// do) treat it like any other duplicate or stale message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// When the process crashes.
    pub at: Duration,
    /// The crashing process.
    pub process: ProcessId,
    /// When the process restarts; `None` models a permanent (crash-stop)
    /// failure.
    pub restart_at: Option<Duration>,
}

/// A scheduled `Event::BecomeLeader` nudge, standing in for the paper's
/// Ω-style leader-election oracle telling `process` to take over its group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderNudge {
    /// When the oracle fires.
    pub at: Duration,
    /// The process told to become leader.
    pub process: ProcessId,
}

/// A complete, deterministic fault schedule for one simulated run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NemesisPlan {
    /// Probabilistic per-message link faults.
    pub link: LinkFaults,
    /// Scheduled network partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Scheduled crashes (and restarts).
    pub crashes: Vec<CrashSpec>,
    /// Scheduled leader-election nudges.
    pub leader_nudges: Vec<LeaderNudge>,
    /// Maximum random extra delay added to every timer while the chaos window
    /// is open. Zero disables timer jitter.
    pub timer_jitter: Duration,
    /// End of the chaos window: link faults and timer jitter only apply to
    /// messages sent (timers armed) strictly before this instant. `None`
    /// keeps them active for the whole run. Partitions and crashes carry
    /// their own schedules and are not affected.
    pub chaos_end: Option<Duration>,
}

impl NemesisPlan {
    /// A plan that injects no faults at all.
    pub fn quiet() -> Self {
        NemesisPlan::default()
    }

    /// Whether the plan injects no faults at all.
    pub fn is_quiet(&self) -> bool {
        !self.link.any()
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.leader_nudges.is_empty()
            && self.timer_jitter.is_zero()
    }

    /// Whether probabilistic link faults / timer jitter apply at `at`.
    pub fn chaos_active(&self, at: Duration) -> bool {
        match self.chaos_end {
            Some(end) => at < end,
            None => true,
        }
    }

    /// Whether some active partition blocks a message from `from` to `to`
    /// sent at `at`.
    pub fn partition_blocks(&self, at: Duration, from: ProcessId, to: ProcessId) -> bool {
        self.partitions.iter().any(|p| p.blocks(at, from, to))
    }

    /// Processes that crash at any point in the plan (restarted or not).
    /// The linearizability oracle uses this to excuse delivery gaps.
    pub fn faulty_processes(&self) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self.crashes.iter().map(|c| c.process).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether the plan can lose messages (drops or partitions), in which
    /// case per-replica delivery gaps are explainable by the environment.
    pub fn lossy(&self) -> bool {
        self.link.drop_per_mille > 0 || !self.partitions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn quiet_plan_reports_quiet() {
        assert!(NemesisPlan::quiet().is_quiet());
        let mut plan = NemesisPlan::quiet();
        plan.link.drop_per_mille = 1;
        assert!(!plan.is_quiet());
        assert!(plan.lossy());
    }

    #[test]
    fn partition_blocks_within_window_and_respects_symmetry() {
        let p = PartitionSpec {
            start: ms(10),
            heal: ms(20),
            side_a: vec![ProcessId(0), ProcessId(1)],
            side_b: vec![ProcessId(2)],
            symmetric: false,
        };
        assert!(p.blocks(ms(10), ProcessId(0), ProcessId(2)));
        assert!(p.blocks(ms(19), ProcessId(1), ProcessId(2)));
        // Asymmetric: the reverse direction stays open.
        assert!(!p.blocks(ms(15), ProcessId(2), ProcessId(0)));
        // Outside the window nothing is blocked.
        assert!(!p.blocks(ms(9), ProcessId(0), ProcessId(2)));
        assert!(!p.blocks(ms(20), ProcessId(0), ProcessId(2)));
        // Unlisted processes are unaffected.
        assert!(!p.blocks(ms(15), ProcessId(0), ProcessId(9)));

        let sym = PartitionSpec {
            symmetric: true,
            ..p.clone()
        };
        assert!(sym.blocks(ms(15), ProcessId(2), ProcessId(0)));
    }

    #[test]
    fn chaos_window_gates_link_faults() {
        let mut plan = NemesisPlan::quiet();
        plan.chaos_end = Some(ms(100));
        assert!(plan.chaos_active(ms(99)));
        assert!(!plan.chaos_active(ms(100)));
        plan.chaos_end = None;
        assert!(plan.chaos_active(ms(1_000_000)));
    }

    #[test]
    fn faulty_processes_deduplicates() {
        let plan = NemesisPlan {
            crashes: vec![
                CrashSpec {
                    at: ms(1),
                    process: ProcessId(3),
                    restart_at: Some(ms(5)),
                },
                CrashSpec {
                    at: ms(9),
                    process: ProcessId(3),
                    restart_at: None,
                },
                CrashSpec {
                    at: ms(2),
                    process: ProcessId(1),
                    restart_at: None,
                },
            ],
            ..NemesisPlan::quiet()
        };
        assert_eq!(plan.faulty_processes(), vec![ProcessId(1), ProcessId(3)]);
        assert!(!plan.lossy(), "crashes alone do not lose sent messages");
    }
}
