//! Actions emitted by sans-IO protocol state machines.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::ids::ProcessId;
use crate::message::AppMessage;
use crate::node::TimerId;
use crate::timestamp::Timestamp;

/// A record of an application message delivered to the local application.
///
/// `deliver(m)` in the paper. The global timestamp is included when the
/// protocol knows it (all protocols in this workspace except the client-side
/// stubs do), which lets tests check the ordering property directly against
/// timestamps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveredMessage {
    /// The delivered application message.
    pub msg: AppMessage,
    /// The message's global timestamp, if exposed by the protocol.
    pub global_ts: Option<Timestamp>,
}

impl DeliveredMessage {
    /// Creates a delivery record with a known global timestamp.
    pub fn with_timestamp(msg: AppMessage, global_ts: Timestamp) -> Self {
        DeliveredMessage {
            msg,
            global_ts: Some(global_ts),
        }
    }

    /// Creates a delivery record without timestamp information.
    pub fn without_timestamp(msg: AppMessage) -> Self {
        DeliveredMessage {
            msg,
            global_ts: None,
        }
    }
}

/// An output action of a protocol node, parameterised by the protocol's wire
/// message type `M`.
///
/// The runtime executing the node is responsible for carrying actions out:
/// sending messages over reliable FIFO channels, arming timers and handing
/// deliveries to the application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action<M> {
    /// Send `msg` to process `to` over the reliable FIFO channel to it.
    Send {
        /// Destination process.
        to: ProcessId,
        /// Protocol message to send.
        msg: M,
    },
    /// Deliver an application message to the local application.
    Deliver(DeliveredMessage),
    /// Arm (or re-arm) a timer: the runtime must produce a
    /// [`Event::Timer`](crate::Event::Timer) with the same id after `delay`.
    SetTimer {
        /// Timer identifier, scoped to this node.
        id: TimerId,
        /// Delay until the timer fires.
        delay: Duration,
    },
    /// Cancel a previously armed timer if it has not fired yet.
    CancelTimer(TimerId),
}

impl<M> Action<M> {
    /// Convenient constructor for send actions.
    pub fn send(to: ProcessId, msg: M) -> Self {
        Action::Send { to, msg }
    }

    /// Sends the same message to every process in `recipients`, cloning it as
    /// needed. Used for the "send to dest(m)" broadcasts of the protocols.
    pub fn send_to_all<I>(recipients: I, msg: M) -> Vec<Self>
    where
        I: IntoIterator<Item = ProcessId>,
        M: Clone,
    {
        recipients
            .into_iter()
            .map(|to| Action::Send {
                to,
                msg: msg.clone(),
            })
            .collect()
    }

    /// Whether this action is a delivery.
    pub fn is_delivery(&self) -> bool {
        matches!(self, Action::Deliver(_))
    }

    /// Returns the delivery record if this action is a delivery.
    pub fn as_delivery(&self) -> Option<&DeliveredMessage> {
        match self {
            Action::Deliver(d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GroupId, MsgId};
    use crate::message::{Destination, Payload};

    fn sample_msg() -> AppMessage {
        AppMessage::new(
            MsgId::new(ProcessId(1), 0),
            Destination::single(GroupId(0)),
            Payload::from("x"),
        )
    }

    #[test]
    fn send_to_all_clones_message() {
        let actions: Vec<Action<u32>> =
            Action::send_to_all(vec![ProcessId(0), ProcessId(1), ProcessId(2)], 7);
        assert_eq!(actions.len(), 3);
        for (i, a) in actions.iter().enumerate() {
            match a {
                Action::Send { to, msg } => {
                    assert_eq!(*to, ProcessId(i as u32));
                    assert_eq!(*msg, 7);
                }
                _ => panic!("expected send"),
            }
        }
    }

    #[test]
    fn delivery_accessors() {
        let d = DeliveredMessage::with_timestamp(sample_msg(), Timestamp::new(3, GroupId(0)));
        let a: Action<u32> = Action::Deliver(d.clone());
        assert!(a.is_delivery());
        assert_eq!(a.as_delivery(), Some(&d));
        let s: Action<u32> = Action::send(ProcessId(0), 1);
        assert!(!s.is_delivery());
        assert_eq!(s.as_delivery(), None);
    }

    #[test]
    fn delivered_message_without_timestamp() {
        let d = DeliveredMessage::without_timestamp(sample_msg());
        assert_eq!(d.global_ts, None);
    }

    #[test]
    fn timer_actions_round_trip_through_serde() {
        let a: Action<String> = Action::SetTimer {
            id: TimerId(4),
            delay: Duration::from_millis(10),
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: Action<String> = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
