//! Checkpoints and the bounded delivered-message filter used by log
//! compaction.
//!
//! A replica that serves heavy traffic cannot keep a `MessageRecord` per
//! multicast forever: the record map, the delivery-condition indexes and the
//! durable state a restarted replica replays all grow without bound. The
//! compaction subsystem prunes records below a *delivery watermark* — the
//! low-water mark of global timestamps below which every record is known to
//! be delivered at **all** members of **every** destination group — and
//! periodically captures the surviving state in a [`Checkpoint`]. Recovery
//! then ships `checkpoint + suffix` instead of replaying per-message history.
//!
//! Two pieces live here because every protocol in the workspace shares them:
//!
//! * [`Checkpoint`] — the ordering-layer state at a watermark: ballot, clock,
//!   per-group watermarks, delivery progress, the delivered-message filter
//!   and an opaque application snapshot (for example a serialized
//!   `wbam_kvstore` store).
//! * [`DeliveredFilter`] — a bounded-memory record of *which* messages have
//!   been delivered, kept as per-sender runs of sequence numbers. Once a
//!   record is pruned, a late duplicate `MULTICAST` can no longer be answered
//!   from the record map; the filter is what keeps such duplicates from being
//!   re-proposed (and delivered twice). Clients allocate sequence numbers
//!   contiguously, so the run representation stays tiny (one run per sender
//!   in the common case) no matter how many messages have been delivered.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ballot::Ballot;
use crate::ids::{GroupId, MsgId, ProcessId};
use crate::timestamp::Timestamp;

/// Bounded-memory set of delivered message identifiers, stored as sorted,
/// disjoint, inclusive runs of sequence numbers per sender.
///
/// ```
/// use wbam_types::{DeliveredFilter, MsgId, ProcessId};
/// let mut f = DeliveredFilter::new();
/// f.insert(MsgId::new(ProcessId(7), 0));
/// f.insert(MsgId::new(ProcessId(7), 1));
/// f.insert(MsgId::new(ProcessId(7), 2));
/// assert!(f.contains(MsgId::new(ProcessId(7), 1)));
/// assert!(!f.contains(MsgId::new(ProcessId(7), 3)));
/// assert_eq!(f.run_count(), 1); // contiguous seqs collapse into one run
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DeliveredFilter {
    /// Per sender: sorted, disjoint, inclusive `(start, end)` runs.
    runs: BTreeMap<ProcessId, Vec<(u64, u64)>>,
}

impl DeliveredFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        DeliveredFilter::default()
    }

    /// Records `id` as delivered.
    pub fn insert(&mut self, id: MsgId) {
        let runs = self.runs.entry(id.sender).or_default();
        let seq = id.seq;
        // Find the first run whose end is >= seq - 1 (a run we can extend or
        // that already covers seq). Runs are few, so a linear scan is fine.
        let mut idx = 0;
        while idx < runs.len() && runs[idx].1.saturating_add(1) < seq {
            idx += 1;
        }
        if idx == runs.len() {
            runs.push((seq, seq));
            return;
        }
        let (start, end) = runs[idx];
        if seq >= start && seq <= end {
            return; // already covered
        }
        if seq.saturating_add(1) == start {
            runs[idx].0 = seq;
        } else if seq == end.saturating_add(1) {
            runs[idx].1 = seq;
            // Merge with the next run if the gap closed.
            if idx + 1 < runs.len() && runs[idx + 1].0 == seq.saturating_add(1) {
                runs[idx].1 = runs[idx + 1].1;
                runs.remove(idx + 1);
            }
        } else {
            runs.insert(idx, (seq, seq));
        }
    }

    /// Whether `id` has been recorded as delivered.
    pub fn contains(&self, id: MsgId) -> bool {
        match self.runs.get(&id.sender) {
            None => false,
            Some(runs) => runs
                .iter()
                .any(|(start, end)| id.seq >= *start && id.seq <= *end),
        }
    }

    /// Merges another filter into this one (set union). Used when installing
    /// a peer's checkpoint: everything the peer knows delivered is delivered.
    /// Costs O(runs), not O(covered sequence numbers) — merges happen on
    /// every recovery, over filters spanning the whole delivered history.
    pub fn merge(&mut self, other: &DeliveredFilter) {
        for (sender, other_runs) in &other.runs {
            let runs = self.runs.entry(*sender).or_default();
            if runs.is_empty() {
                *runs = other_runs.clone();
                continue;
            }
            // Merge the two sorted, disjoint run lists, coalescing runs that
            // overlap or touch (end + 1 == start).
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(runs.len() + other_runs.len());
            let mut a = runs.iter().peekable();
            let mut b = other_runs.iter().peekable();
            loop {
                let next = match (a.peek(), b.peek()) {
                    (Some(x), Some(y)) => {
                        if x.0 <= y.0 {
                            *a.next().expect("peeked")
                        } else {
                            *b.next().expect("peeked")
                        }
                    }
                    (Some(_), None) => *a.next().expect("peeked"),
                    (None, Some(_)) => *b.next().expect("peeked"),
                    (None, None) => break,
                };
                match merged.last_mut() {
                    Some(last) if next.0 <= last.1.saturating_add(1) => {
                        last.1 = last.1.max(next.1);
                    }
                    _ => merged.push(next),
                }
            }
            *runs = merged;
        }
    }

    /// Total number of runs across all senders — the filter's actual memory
    /// footprint (contiguous sequence numbers collapse, so this stays small).
    pub fn run_count(&self) -> usize {
        self.runs.values().map(Vec::len).sum()
    }

    /// Whether the filter is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

/// A compaction checkpoint: everything a replica needs to resume ordering
/// from a delivery watermark without the per-message history below it.
///
/// The white-box protocol ships a checkpoint inside `NEW_STATE` (recovery
/// becomes *state transfer*: checkpoint + record suffix); the baselines ship
/// one in their catch-up reply together with the surviving consensus-log
/// suffix. `app_state` is an opaque application snapshot — the ordering layer
/// never interprets it (the key-value store serialises its
/// `KvSnapshot` into it; other applications can store whatever they replay
/// from).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The group of the replica that took the checkpoint.
    pub group: GroupId,
    /// The ballot the replica was synchronised with.
    pub ballot: Ballot,
    /// The replica's logical clock.
    pub clock: u64,
    /// Every group's delivery watermark as known to the replica: all records
    /// with `global_ts <= watermarks[g]` are delivered at every member of
    /// `g`. A record may be pruned only when covered by the watermark of
    /// **every** destination group.
    pub watermarks: BTreeMap<GroupId, Timestamp>,
    /// The replica's own delivery progress.
    pub max_delivered_gts: Timestamp,
    /// Number of application messages delivered.
    pub delivered_count: u64,
    /// The delivered-message filter at the checkpoint.
    pub dedup: DeliveredFilter,
    /// Opaque application snapshot (e.g. a serialized key-value store).
    pub app_state: Vec<u8>,
}

impl Checkpoint {
    /// The checkpointing group's own watermark ([`Timestamp::BOTTOM`] if the
    /// watermark never advanced).
    pub fn own_watermark(&self) -> Timestamp {
        self.watermarks
            .get(&self.group)
            .copied()
            .unwrap_or(Timestamp::BOTTOM)
    }

    /// Merges `other`'s watermark knowledge into this checkpoint (pointwise
    /// maximum — watermarks only ever advance).
    pub fn merge_watermarks(&mut self, other: &BTreeMap<GroupId, Timestamp>) {
        merge_watermarks(&mut self.watermarks, other);
    }
}

/// Merges watermark knowledge pointwise by maximum (watermarks only ever
/// advance) and reports whether anything changed. The shared primitive of
/// every `STABLE_ADVANCE` / checkpoint-install merge in the workspace.
pub fn merge_watermarks(
    into: &mut BTreeMap<GroupId, Timestamp>,
    from: &BTreeMap<GroupId, Timestamp>,
) -> bool {
    let mut changed = false;
    for (g, ts) in from {
        let entry = into.entry(*g).or_insert(Timestamp::BOTTOM);
        if *ts > *entry {
            *entry = *ts;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(sender: u32, seq: u64) -> MsgId {
        MsgId::new(ProcessId(sender), seq)
    }

    #[test]
    fn contiguous_inserts_collapse_into_one_run() {
        let mut f = DeliveredFilter::new();
        for seq in 0..1000 {
            f.insert(id(1, seq));
        }
        assert_eq!(f.run_count(), 1);
        assert!(f.contains(id(1, 0)));
        assert!(f.contains(id(1, 999)));
        assert!(!f.contains(id(1, 1000)));
        assert!(!f.contains(id(2, 0)));
    }

    #[test]
    fn out_of_order_inserts_merge_runs() {
        let mut f = DeliveredFilter::new();
        f.insert(id(1, 0));
        f.insert(id(1, 2));
        assert_eq!(f.run_count(), 2);
        f.insert(id(1, 1)); // closes the gap
        assert_eq!(f.run_count(), 1);
        assert!(f.contains(id(1, 1)));
        // Duplicates are idempotent.
        f.insert(id(1, 1));
        assert_eq!(f.run_count(), 1);
    }

    #[test]
    fn prepending_extends_a_run_backwards() {
        let mut f = DeliveredFilter::new();
        f.insert(id(3, 5));
        f.insert(id(3, 4));
        assert_eq!(f.run_count(), 1);
        assert!(f.contains(id(3, 4)));
        assert!(!f.contains(id(3, 3)));
    }

    #[test]
    fn merge_is_set_union() {
        let mut a = DeliveredFilter::new();
        a.insert(id(1, 0));
        a.insert(id(1, 1));
        let mut b = DeliveredFilter::new();
        b.insert(id(1, 2));
        b.insert(id(2, 7));
        a.merge(&b);
        assert!(a.contains(id(1, 2)));
        assert!(a.contains(id(2, 7)));
        assert_eq!(a.run_count(), 2, "1's runs merged, 2 separate");
    }

    #[test]
    fn merge_coalesces_overlapping_and_interleaved_runs() {
        // a: [0..=4], [10..=12], [20..=20]; b: [3..=11], [14..=14], [21..=30]
        let mut a = DeliveredFilter::new();
        for seq in (0..=4).chain(10..=12).chain(20..=20) {
            a.insert(id(1, seq));
        }
        let mut b = DeliveredFilter::new();
        for seq in (3..=11).chain(14..=14).chain(21..=30) {
            b.insert(id(1, seq));
        }
        a.merge(&b);
        // Union: [0..=12], [14..=14], [20..=30].
        assert_eq!(a.run_count(), 3);
        for seq in (0..=12).chain(14..=14).chain(20..=30) {
            assert!(a.contains(id(1, seq)), "missing seq {seq}");
        }
        assert!(!a.contains(id(1, 13)));
        assert!(!a.contains(id(1, 19)));
        assert!(!a.contains(id(1, 31)));
        // Merging into an empty per-sender list clones wholesale.
        let mut c = DeliveredFilter::new();
        c.merge(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn checkpoint_watermark_accessors() {
        let mut cp = Checkpoint {
            group: GroupId(1),
            ..Checkpoint::default()
        };
        assert_eq!(cp.own_watermark(), Timestamp::BOTTOM);
        let mut update = BTreeMap::new();
        update.insert(GroupId(1), Timestamp::new(5, GroupId(1)));
        update.insert(GroupId(0), Timestamp::new(3, GroupId(0)));
        cp.merge_watermarks(&update);
        assert_eq!(cp.own_watermark(), Timestamp::new(5, GroupId(1)));
        // Merging an older watermark never regresses.
        let mut stale = BTreeMap::new();
        stale.insert(GroupId(1), Timestamp::new(2, GroupId(1)));
        cp.merge_watermarks(&stale);
        assert_eq!(cp.own_watermark(), Timestamp::new(5, GroupId(1)));
    }

    #[test]
    fn checkpoint_round_trips_through_serde() {
        let mut cp = Checkpoint {
            group: GroupId(0),
            ballot: Ballot::new(3, ProcessId(1)),
            clock: 42,
            max_delivered_gts: Timestamp::new(9, GroupId(0)),
            delivered_count: 12,
            app_state: vec![1, 2, 3],
            ..Checkpoint::default()
        };
        cp.dedup.insert(id(5, 0));
        cp.watermarks
            .insert(GroupId(0), Timestamp::new(9, GroupId(0)));
        let json = serde_json::to_string(&cp).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(cp, back);
    }
}
