//! Processing phases of an application message at a process.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Phase of an application message at a process (`Phase[m]` in Figures 1/3).
///
/// Skeen's protocol uses `Start → Proposed → Committed`; the white-box
/// protocol inserts an additional `Accepted` phase between `Proposed` and
/// `Committed` that records that the process has durably stored the local
/// timestamp proposals of all destination groups (paper Figure 4, line 12).
///
/// ```
/// use wbam_types::Phase;
/// assert!(Phase::Start < Phase::Proposed);
/// assert!(Phase::Proposed < Phase::Accepted);
/// assert!(Phase::Accepted < Phase::Committed);
/// assert_eq!(Phase::default(), Phase::Start);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Phase {
    /// The process has not yet assigned a local timestamp to the message.
    #[default]
    Start,
    /// A local timestamp has been proposed for the message (leader only in the
    /// white-box protocol).
    Proposed,
    /// The local timestamps of all destination groups have been stored
    /// (white-box protocol only).
    Accepted,
    /// The global timestamp of the message is known.
    Committed,
}

impl Phase {
    /// Whether the message is still awaiting its global timestamp, i.e. the
    /// phase is `Proposed` or `Accepted`. Such messages can block the delivery
    /// of committed messages with higher local timestamps (Figure 4, line 21).
    pub fn is_pending(self) -> bool {
        matches!(self, Phase::Proposed | Phase::Accepted)
    }

    /// Whether the global timestamp of the message is known at this process.
    pub fn is_committed(self) -> bool {
        matches!(self, Phase::Committed)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Start => "START",
            Phase::Proposed => "PROPOSED",
            Phase::Accepted => "ACCEPTED",
            Phase::Committed => "COMMITTED",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_progression_is_ordered() {
        assert!(Phase::Start < Phase::Proposed);
        assert!(Phase::Proposed < Phase::Accepted);
        assert!(Phase::Accepted < Phase::Committed);
    }

    #[test]
    fn default_is_start() {
        assert_eq!(Phase::default(), Phase::Start);
    }

    #[test]
    fn pending_and_committed_predicates() {
        assert!(!Phase::Start.is_pending());
        assert!(Phase::Proposed.is_pending());
        assert!(Phase::Accepted.is_pending());
        assert!(!Phase::Committed.is_pending());
        assert!(Phase::Committed.is_committed());
        assert!(!Phase::Accepted.is_committed());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Phase::Start.to_string(), "START");
        assert_eq!(Phase::Proposed.to_string(), "PROPOSED");
        assert_eq!(Phase::Accepted.to_string(), "ACCEPTED");
        assert_eq!(Phase::Committed.to_string(), "COMMITTED");
    }
}
