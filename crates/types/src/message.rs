//! Application messages and destination sets.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::error::WbamError;
use crate::ids::{GroupId, MsgId};

/// Application payload carried by a multicast message.
///
/// Payloads are opaque byte strings; the evaluation in the paper uses 20-byte
/// messages (§VI). [`Payload`] is cheaply cloneable (`Bytes` is reference
/// counted).
///
/// ```
/// use wbam_types::Payload;
/// let p = Payload::from_static(b"hello");
/// assert_eq!(p.len(), 5);
/// assert!(!p.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Payload(Bytes);

impl Payload {
    /// Creates an empty payload.
    pub fn empty() -> Self {
        Payload(Bytes::new())
    }

    /// Creates a payload from a static byte string without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Payload(Bytes::from_static(bytes))
    }

    /// Creates a payload consisting of `len` zero bytes, for benchmarking.
    pub fn zeros(len: usize) -> Self {
        Payload(Bytes::from(vec![0u8; len]))
    }

    /// Length of the payload in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// A view of the payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(Bytes::from(v))
    }
}

impl From<&str> for Payload {
    fn from(s: &str) -> Self {
        Payload(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload(b)
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// The destination group set of an application message (`dest(m)` in the paper).
///
/// A destination set is a non-empty set of group identifiers, stored sorted and
/// de-duplicated. Two messages *conflict* when their destination sets intersect.
///
/// ```
/// use wbam_types::{Destination, GroupId};
/// let d = Destination::new(vec![GroupId(2), GroupId(0), GroupId(2)]).unwrap();
/// assert_eq!(d.groups(), &[GroupId(0), GroupId(2)]);
/// assert!(d.contains(GroupId(0)));
/// let e = Destination::new(vec![GroupId(1), GroupId(2)]).unwrap();
/// assert!(d.conflicts_with(&e));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Destination(Vec<GroupId>);

impl Destination {
    /// Creates a destination set from a list of groups.
    ///
    /// Duplicates are removed and the set is stored sorted.
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::EmptyDestination`] if the resulting set is empty.
    pub fn new<I: IntoIterator<Item = GroupId>>(groups: I) -> Result<Self, WbamError> {
        let mut v: Vec<GroupId> = groups.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        if v.is_empty() {
            return Err(WbamError::EmptyDestination);
        }
        Ok(Destination(v))
    }

    /// Creates a destination set addressed to a single group.
    pub fn single(group: GroupId) -> Self {
        Destination(vec![group])
    }

    /// The groups in the destination set, sorted ascending.
    pub fn groups(&self) -> &[GroupId] {
        &self.0
    }

    /// Number of destination groups.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the destination set is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the set contains a given group.
    pub fn contains(&self, g: GroupId) -> bool {
        self.0.binary_search(&g).is_ok()
    }

    /// Whether two destination sets intersect, i.e. whether messages addressed
    /// to them are *conflicting* in the sense of §II.
    pub fn conflicts_with(&self, other: &Destination) -> bool {
        self.0.iter().any(|g| other.contains(*g))
    }

    /// Iterates over the destination groups.
    pub fn iter(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.0.iter().copied()
    }
}

impl fmt::Display for Destination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, g) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, "}}")
    }
}

/// An application message submitted for multicast: identifier, destination
/// groups and opaque payload.
///
/// ```
/// use wbam_types::{AppMessage, Destination, GroupId, MsgId, Payload, ProcessId};
/// let m = AppMessage::new(
///     MsgId::new(ProcessId(30), 0),
///     Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
///     Payload::from("set x=1"),
/// );
/// assert_eq!(m.dest.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppMessage {
    /// Globally unique identifier of the message.
    pub id: MsgId,
    /// Destination groups `dest(m)`.
    pub dest: Destination,
    /// Opaque application payload.
    pub payload: Payload,
}

impl AppMessage {
    /// Creates an application message.
    pub fn new(id: MsgId, dest: Destination, payload: Payload) -> Self {
        AppMessage { id, dest, payload }
    }

    /// Whether the message is addressed to the given group.
    pub fn is_addressed_to(&self, g: GroupId) -> bool {
        self.dest.contains(g)
    }

    /// Whether this message conflicts with another (destination sets intersect).
    pub fn conflicts_with(&self, other: &AppMessage) -> bool {
        self.dest.conflicts_with(&other.dest)
    }
}

impl fmt::Display for AppMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.id, self.dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;

    #[test]
    fn payload_constructors() {
        assert!(Payload::empty().is_empty());
        assert_eq!(Payload::zeros(20).len(), 20);
        assert_eq!(Payload::from("abc").as_bytes(), b"abc");
        assert_eq!(Payload::from(vec![1, 2, 3]).as_ref(), &[1, 2, 3]);
        assert_eq!(Payload::from_static(b"xy").len(), 2);
    }

    #[test]
    fn destination_dedups_and_sorts() {
        let d = Destination::new(vec![GroupId(3), GroupId(1), GroupId(3)]).unwrap();
        assert_eq!(d.groups(), &[GroupId(1), GroupId(3)]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert!(d.contains(GroupId(1)));
        assert!(!d.contains(GroupId(2)));
        assert_eq!(d.to_string(), "{g1,g3}");
    }

    #[test]
    fn empty_destination_is_rejected() {
        assert!(matches!(
            Destination::new(Vec::new()),
            Err(WbamError::EmptyDestination)
        ));
    }

    #[test]
    fn single_destination() {
        let d = Destination::single(GroupId(4));
        assert_eq!(d.groups(), &[GroupId(4)]);
    }

    #[test]
    fn conflict_detection() {
        let a = Destination::new(vec![GroupId(0), GroupId(1)]).unwrap();
        let b = Destination::new(vec![GroupId(1), GroupId(2)]).unwrap();
        let c = Destination::new(vec![GroupId(3)]).unwrap();
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
        assert!(!a.conflicts_with(&c));
    }

    #[test]
    fn app_message_addressing() {
        let m = AppMessage::new(
            MsgId::new(ProcessId(9), 3),
            Destination::new(vec![GroupId(0), GroupId(2)]).unwrap(),
            Payload::from("v"),
        );
        assert!(m.is_addressed_to(GroupId(2)));
        assert!(!m.is_addressed_to(GroupId(1)));
        let n = AppMessage::new(
            MsgId::new(ProcessId(9), 4),
            Destination::single(GroupId(2)),
            Payload::empty(),
        );
        assert!(m.conflicts_with(&n));
        assert_eq!(m.to_string(), "m(p9,3)→{g0,g2}");
    }

    #[test]
    fn app_message_round_trips_through_serde() {
        let m = AppMessage::new(
            MsgId::new(ProcessId(1), 2),
            Destination::new(vec![GroupId(0)]).unwrap(),
            Payload::from(vec![9, 9]),
        );
        let json = serde_json::to_string(&m).unwrap();
        let back: AppMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
