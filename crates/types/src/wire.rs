//! Length-prefixed wire framing for protocol messages.
//!
//! The sans-IO protocols exchange strongly typed messages; when they are run
//! over a byte-oriented transport (the loopback TCP transport of
//! `wbam-runtime`, or a file-based trace), messages are framed as
//! `u32 big-endian length || body`, where the body is produced by a
//! [`WireCodec`]:
//!
//! * [`WireCodec::Binary`] (the default) — the compact `serde_binary` format:
//!   varint integers, interned map keys, packed byte payloads. This is the
//!   deployed runtime's codec; `WIRE.md` at the repo root specifies it
//!   byte-for-byte.
//! * [`WireCodec::Json`] — self-describing `serde_json` bodies, kept for
//!   debuggable traces and as a compatibility flag (`wbamd --wire json`).
//!
//! Connections additionally start with a fixed 4-byte preamble
//! (`"WB" || version || codec`) so that a mixed-codec or mixed-version
//! cluster fails fast with a clear error instead of surfacing as garbled
//! frame decodes. See [`encode_preamble`] / [`check_preamble`].

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::WbamError;

/// Maximum accepted frame body length (16 MiB); guards against corrupt length
/// prefixes when reading from a byte stream.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// The two magic bytes opening every connection preamble.
pub const WIRE_MAGIC: [u8; 2] = *b"WB";

/// The wire protocol version negotiated in the connection preamble.
pub const WIRE_VERSION: u8 = 1;

/// Length of the connection preamble in bytes.
pub const PREAMBLE_LEN: usize = 4;

/// The serialisation format used for frame bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireCodec {
    /// Compact binary bodies (`serde_binary`); the deployed default.
    #[default]
    Binary,
    /// Self-describing JSON bodies (`serde_json`); the compatibility codec.
    Json,
}

impl WireCodec {
    /// The codec byte carried in the connection preamble.
    pub const fn wire_byte(self) -> u8 {
        match self {
            WireCodec::Json => 1,
            WireCodec::Binary => 2,
        }
    }

    /// Inverse of [`Self::wire_byte`].
    pub fn from_wire_byte(byte: u8) -> Option<Self> {
        match byte {
            1 => Some(WireCodec::Json),
            2 => Some(WireCodec::Binary),
            _ => None,
        }
    }

    /// The codec's name as used by `--wire` flags and bench records.
    pub const fn name(self) -> &'static str {
        match self {
            WireCodec::Json => "json",
            WireCodec::Binary => "binary",
        }
    }

    /// Parses a `--wire` flag value.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "json" => Some(WireCodec::Json),
            "binary" => Some(WireCodec::Binary),
            _ => None,
        }
    }
}

impl std::fmt::Display for WireCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the 4-byte preamble a connecting peer must send before its first
/// frame: `WIRE_MAGIC || WIRE_VERSION || codec byte`.
pub const fn encode_preamble(codec: WireCodec) -> [u8; PREAMBLE_LEN] {
    [
        WIRE_MAGIC[0],
        WIRE_MAGIC[1],
        WIRE_VERSION,
        codec.wire_byte(),
    ]
}

/// Validates a received connection preamble against the local codec.
///
/// # Errors
///
/// Returns [`WbamError::Codec`] with a message naming the exact mismatch —
/// wrong magic (not a WBAM peer), unsupported version, unknown codec byte, or
/// a codec disagreeing with `expected` (e.g. a `--wire json` process dialling
/// a `--wire binary` cluster).
pub fn check_preamble(bytes: &[u8; PREAMBLE_LEN], expected: WireCodec) -> Result<(), WbamError> {
    if bytes[..2] != WIRE_MAGIC {
        return Err(WbamError::Codec(format!(
            "connection preamble has bad magic {:02x}{:02x} (expected \"WB\"): not a WBAM peer",
            bytes[0], bytes[1]
        )));
    }
    if bytes[2] != WIRE_VERSION {
        return Err(WbamError::Codec(format!(
            "peer speaks wire version {} but this process speaks {WIRE_VERSION}",
            bytes[2]
        )));
    }
    match WireCodec::from_wire_byte(bytes[3]) {
        None => Err(WbamError::Codec(format!(
            "peer sent unknown wire codec byte {}",
            bytes[3]
        ))),
        Some(codec) if codec != expected => Err(WbamError::Codec(format!(
            "wire codec mismatch: peer uses --wire {codec} but this process uses --wire {expected}"
        ))),
        Some(_) => Ok(()),
    }
}

/// Encodes a message as a length-prefixed frame using `codec` for the body.
///
/// # Errors
///
/// Returns [`WbamError::Codec`] if serialisation fails (which only happens for
/// types whose `Serialize` implementation can fail) or if the serialised body
/// exceeds [`MAX_FRAME_LEN`]. The length check matters: `body.len() as u32`
/// would otherwise silently truncate a body longer than `u32::MAX`, emitting a
/// corrupt length prefix the peer cannot resync from, and any frame longer
/// than [`MAX_FRAME_LEN`] would be rejected by the receiving decode anyway.
pub fn encode_frame_with<M: Serialize>(codec: WireCodec, msg: &M) -> Result<Bytes, WbamError> {
    let body = match codec {
        WireCodec::Json => serde_json::to_vec(msg).map_err(|e| WbamError::Codec(e.to_string()))?,
        WireCodec::Binary => {
            serde_binary::to_vec(msg).map_err(|e| WbamError::Codec(e.to_string()))?
        }
    };
    if body.len() > MAX_FRAME_LEN {
        return Err(WbamError::Codec(format!(
            "frame body of {} bytes exceeds maximum {MAX_FRAME_LEN}",
            body.len()
        )));
    }
    let mut buf = BytesMut::with_capacity(4 + body.len());
    buf.put_u32(body.len() as u32);
    buf.put_slice(&body);
    Ok(buf.freeze())
}

/// Attempts to decode one frame from the front of the byte slice `input`.
///
/// Returns the decoded message and the number of bytes consumed, or
/// `Ok(None)` when `input` does not yet contain a full frame. Unlike
/// [`decode_frame_with`] this never shifts buffer contents, so a reader can
/// decode a whole burst of frames with a cursor and compact its buffer once.
///
/// # Errors
///
/// Returns [`WbamError::Codec`] when the length prefix exceeds
/// [`MAX_FRAME_LEN`] or the body fails to deserialise.
pub fn decode_frame_slice<M: DeserializeOwned>(
    codec: WireCodec,
    input: &[u8],
) -> Result<Option<(M, usize)>, WbamError> {
    if input.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([input[0], input[1], input[2], input[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WbamError::Codec(format!(
            "frame length {len} exceeds maximum {MAX_FRAME_LEN}"
        )));
    }
    if input.len() < 4 + len {
        return Ok(None);
    }
    let body = &input[4..4 + len];
    let msg = match codec {
        WireCodec::Json => {
            serde_json::from_slice(body).map_err(|e| WbamError::Codec(e.to_string()))?
        }
        WireCodec::Binary => {
            serde_binary::from_slice(body).map_err(|e| WbamError::Codec(e.to_string()))?
        }
    };
    Ok(Some((msg, 4 + len)))
}

/// Attempts to decode one frame from the front of `buf`.
///
/// On success the consumed bytes are removed from `buf` and the decoded message
/// is returned. Returns `Ok(None)` when the buffer does not yet contain a full
/// frame (more bytes must be read from the transport).
///
/// # Errors
///
/// Returns [`WbamError::Codec`] when the length prefix exceeds
/// [`MAX_FRAME_LEN`] or the body fails to deserialise.
pub fn decode_frame_with<M: DeserializeOwned>(
    codec: WireCodec,
    buf: &mut BytesMut,
) -> Result<Option<M>, WbamError> {
    match decode_frame_slice(codec, &buf[..])? {
        Some((msg, consumed)) => {
            buf.advance(consumed);
            Ok(Some(msg))
        }
        None => Ok(None),
    }
}

/// Encodes a message as a length-prefixed JSON frame.
///
/// Shorthand for [`encode_frame_with`] with [`WireCodec::Json`], kept for
/// traces and tooling that want self-describing bodies.
///
/// # Errors
///
/// Same conditions as [`encode_frame_with`].
pub fn encode_frame<M: Serialize>(msg: &M) -> Result<Bytes, WbamError> {
    encode_frame_with(WireCodec::Json, msg)
}

/// Attempts to decode one JSON frame from the front of `buf`.
///
/// Shorthand for [`decode_frame_with`] with [`WireCodec::Json`].
///
/// # Errors
///
/// Same conditions as [`decode_frame_with`].
pub fn decode_frame<M: DeserializeOwned>(buf: &mut BytesMut) -> Result<Option<M>, WbamError> {
    decode_frame_with(WireCodec::Json, buf)
}

/// Encodes a message directly to a JSON string (used for traces and tooling).
///
/// # Errors
///
/// Returns [`WbamError::Codec`] if serialisation fails.
pub fn to_json<M: Serialize>(msg: &M) -> Result<String, WbamError> {
    serde_json::to_string(msg).map_err(|e| WbamError::Codec(e.to_string()))
}

/// Decodes a message from a JSON string.
///
/// # Errors
///
/// Returns [`WbamError::Codec`] if deserialisation fails.
pub fn from_json<M: DeserializeOwned>(json: &str) -> Result<M, WbamError> {
    serde_json::from_str(json).map_err(|e| WbamError::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Ping {
        seq: u64,
        note: String,
    }

    const BOTH: [WireCodec; 2] = [WireCodec::Json, WireCodec::Binary];

    #[test]
    fn frame_round_trip() {
        for codec in BOTH {
            let msg = Ping {
                seq: 7,
                note: "hello".to_string(),
            };
            let frame = encode_frame_with(codec, &msg).unwrap();
            let mut buf = BytesMut::from(&frame[..]);
            let back: Ping = decode_frame_with(codec, &mut buf).unwrap().unwrap();
            assert_eq!(back, msg);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn binary_frames_are_smaller() {
        let msg = Ping {
            seq: 123_456,
            note: "hello".to_string(),
        };
        let json = encode_frame_with(WireCodec::Json, &msg).unwrap();
        let binary = encode_frame_with(WireCodec::Binary, &msg).unwrap();
        assert!(
            binary.len() < json.len(),
            "binary {} >= json {}",
            binary.len(),
            json.len()
        );
    }

    #[test]
    fn partial_frames_request_more_data() {
        for codec in BOTH {
            let msg = Ping {
                seq: 1,
                note: "x".to_string(),
            };
            let frame = encode_frame_with(codec, &msg).unwrap();
            let mut buf = BytesMut::from(&frame[..3]);
            assert_eq!(decode_frame_with::<Ping>(codec, &mut buf).unwrap(), None);
            let mut buf = BytesMut::from(&frame[..frame.len() - 1]);
            assert_eq!(decode_frame_with::<Ping>(codec, &mut buf).unwrap(), None);
        }
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        for codec in BOTH {
            let a = Ping {
                seq: 1,
                note: "a".to_string(),
            };
            let b = Ping {
                seq: 2,
                note: "b".to_string(),
            };
            let mut buf = BytesMut::new();
            buf.extend_from_slice(&encode_frame_with(codec, &a).unwrap());
            buf.extend_from_slice(&encode_frame_with(codec, &b).unwrap());
            assert_eq!(
                decode_frame_with::<Ping>(codec, &mut buf).unwrap().unwrap(),
                a
            );
            assert_eq!(
                decode_frame_with::<Ping>(codec, &mut buf).unwrap().unwrap(),
                b
            );
            assert_eq!(decode_frame_with::<Ping>(codec, &mut buf).unwrap(), None);
        }
    }

    #[test]
    fn slice_decode_reports_consumed_bytes() {
        let a = Ping {
            seq: 1,
            note: "a".to_string(),
        };
        let b = Ping {
            seq: 2,
            note: "bb".to_string(),
        };
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame_with(WireCodec::Binary, &a).unwrap());
        stream.extend_from_slice(&encode_frame_with(WireCodec::Binary, &b).unwrap());
        let (first, consumed): (Ping, usize) = decode_frame_slice(WireCodec::Binary, &stream)
            .unwrap()
            .unwrap();
        assert_eq!(first, a);
        let (second, rest): (Ping, usize) =
            decode_frame_slice(WireCodec::Binary, &stream[consumed..])
                .unwrap()
                .unwrap();
        assert_eq!(second, b);
        assert_eq!(consumed + rest, stream.len());
    }

    /// A frame body one byte over the limit is rejected on the encode side
    /// (instead of truncating its length prefix), while a body at exactly the
    /// limit round-trips. Every added `x` in `note` grows the JSON body by
    /// exactly one byte, so the body length can be dialled in precisely.
    #[test]
    fn encode_rejects_bodies_over_the_frame_limit() {
        let overhead = serde_json::to_vec(&Ping {
            seq: 7,
            note: String::new(),
        })
        .unwrap()
        .len();

        let over = Ping {
            seq: 7,
            note: "x".repeat(MAX_FRAME_LEN - overhead + 1),
        };
        let err = encode_frame(&over).unwrap_err();
        assert!(matches!(err, WbamError::Codec(_)), "got {err:?}");
        assert!(err.to_string().contains("exceeds maximum"));

        let at_limit = Ping {
            seq: 7,
            note: "x".repeat(MAX_FRAME_LEN - overhead),
        };
        let frame = encode_frame(&at_limit).unwrap();
        assert_eq!(frame.len(), 4 + MAX_FRAME_LEN);
        let mut buf = BytesMut::from(&frame[..]);
        let back: Ping = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(back, at_limit);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        for codec in BOTH {
            let mut buf = BytesMut::new();
            buf.put_u32(u32::MAX);
            buf.put_slice(&[0u8; 16]);
            assert!(decode_frame_with::<Ping>(codec, &mut buf).is_err());
        }
    }

    #[test]
    fn corrupt_body_is_rejected() {
        for codec in BOTH {
            let mut buf = BytesMut::new();
            buf.put_u32(3);
            buf.put_slice(b"not");
            assert!(decode_frame_with::<Ping>(codec, &mut buf).is_err());
        }
    }

    #[test]
    fn cross_codec_decode_fails() {
        // A JSON frame fed to the binary decoder (and vice versa) must error,
        // not silently decode: this is what the preamble handshake prevents.
        let msg = Ping {
            seq: 9,
            note: "mismatch".to_string(),
        };
        let json = encode_frame_with(WireCodec::Json, &msg).unwrap();
        let mut buf = BytesMut::from(&json[..]);
        assert!(decode_frame_with::<Ping>(WireCodec::Binary, &mut buf).is_err());
        let binary = encode_frame_with(WireCodec::Binary, &msg).unwrap();
        let mut buf = BytesMut::from(&binary[..]);
        assert!(decode_frame_with::<Ping>(WireCodec::Json, &mut buf).is_err());
    }

    #[test]
    fn preamble_round_trip_and_mismatches() {
        for codec in BOTH {
            let p = encode_preamble(codec);
            assert_eq!(p.len(), PREAMBLE_LEN);
            check_preamble(&p, codec).unwrap();
        }
        // Codec mismatch names both sides.
        let err = check_preamble(&encode_preamble(WireCodec::Json), WireCodec::Binary).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("--wire json") && text.contains("--wire binary"),
            "{text}"
        );
        // Bad magic (e.g. an HTTP client) is called out as a non-WBAM peer.
        let err = check_preamble(b"GET ", WireCodec::Binary).unwrap_err();
        assert!(err.to_string().contains("not a WBAM peer"));
        // Future version byte.
        let err = check_preamble(&[b'W', b'B', 9, 2], WireCodec::Binary).unwrap_err();
        assert!(err.to_string().contains("wire version 9"));
        // Unknown codec byte.
        let err = check_preamble(&[b'W', b'B', WIRE_VERSION, 7], WireCodec::Binary).unwrap_err();
        assert!(err.to_string().contains("codec byte 7"));
    }

    #[test]
    fn codec_names_round_trip() {
        for codec in BOTH {
            assert_eq!(WireCodec::from_name(codec.name()), Some(codec));
            assert_eq!(WireCodec::from_wire_byte(codec.wire_byte()), Some(codec));
        }
        assert_eq!(WireCodec::from_name("msgpack"), None);
        assert_eq!(WireCodec::default(), WireCodec::Binary);
    }

    #[test]
    fn json_helpers_round_trip() {
        let msg = Ping {
            seq: 9,
            note: "trace".to_string(),
        };
        let json = to_json(&msg).unwrap();
        let back: Ping = from_json(&json).unwrap();
        assert_eq!(back, msg);
        assert!(from_json::<Ping>("{").is_err());
    }
}
