//! Length-prefixed wire framing for protocol messages.
//!
//! The sans-IO protocols exchange strongly typed messages; when they are run
//! over a byte-oriented transport (the loopback TCP transport of
//! `wbam-runtime`, or a file-based trace), messages are framed as
//! `u32 big-endian length || serde_json body`. JSON was chosen over a custom
//! binary codec because the protocols are latency- rather than
//! bandwidth-bound (payloads in the paper's evaluation are 20 bytes) and a
//! self-describing format makes traces debuggable.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::WbamError;

/// Maximum accepted frame body length (16 MiB); guards against corrupt length
/// prefixes when reading from a byte stream.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Encodes a message as a length-prefixed frame.
///
/// # Errors
///
/// Returns [`WbamError::Codec`] if serialisation fails (which only happens for
/// types whose `Serialize` implementation can fail) or if the serialised body
/// exceeds [`MAX_FRAME_LEN`]. The length check matters: `body.len() as u32`
/// would otherwise silently truncate a body longer than `u32::MAX`, emitting a
/// corrupt length prefix the peer cannot resync from, and any frame longer
/// than [`MAX_FRAME_LEN`] would be rejected by the receiving [`decode_frame`]
/// anyway.
pub fn encode_frame<M: Serialize>(msg: &M) -> Result<Bytes, WbamError> {
    let body = serde_json::to_vec(msg).map_err(|e| WbamError::Codec(e.to_string()))?;
    if body.len() > MAX_FRAME_LEN {
        return Err(WbamError::Codec(format!(
            "frame body of {} bytes exceeds maximum {MAX_FRAME_LEN}",
            body.len()
        )));
    }
    let mut buf = BytesMut::with_capacity(4 + body.len());
    buf.put_u32(body.len() as u32);
    buf.put_slice(&body);
    Ok(buf.freeze())
}

/// Attempts to decode one frame from the front of `buf`.
///
/// On success the consumed bytes are removed from `buf` and the decoded message
/// is returned. Returns `Ok(None)` when the buffer does not yet contain a full
/// frame (more bytes must be read from the transport).
///
/// # Errors
///
/// Returns [`WbamError::Codec`] when the length prefix exceeds
/// [`MAX_FRAME_LEN`] or the body fails to deserialise.
pub fn decode_frame<M: DeserializeOwned>(buf: &mut BytesMut) -> Result<Option<M>, WbamError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WbamError::Codec(format!(
            "frame length {len} exceeds maximum {MAX_FRAME_LEN}"
        )));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let body = buf.split_to(len);
    let msg = serde_json::from_slice(&body).map_err(|e| WbamError::Codec(e.to_string()))?;
    Ok(Some(msg))
}

/// Encodes a message directly to a JSON string (used for traces and tooling).
///
/// # Errors
///
/// Returns [`WbamError::Codec`] if serialisation fails.
pub fn to_json<M: Serialize>(msg: &M) -> Result<String, WbamError> {
    serde_json::to_string(msg).map_err(|e| WbamError::Codec(e.to_string()))
}

/// Decodes a message from a JSON string.
///
/// # Errors
///
/// Returns [`WbamError::Codec`] if deserialisation fails.
pub fn from_json<M: DeserializeOwned>(json: &str) -> Result<M, WbamError> {
    serde_json::from_str(json).map_err(|e| WbamError::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Ping {
        seq: u64,
        note: String,
    }

    #[test]
    fn frame_round_trip() {
        let msg = Ping {
            seq: 7,
            note: "hello".to_string(),
        };
        let frame = encode_frame(&msg).unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let back: Ping = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(back, msg);
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frames_request_more_data() {
        let msg = Ping {
            seq: 1,
            note: "x".to_string(),
        };
        let frame = encode_frame(&msg).unwrap();
        let mut buf = BytesMut::from(&frame[..3]);
        assert_eq!(decode_frame::<Ping>(&mut buf).unwrap(), None);
        let mut buf = BytesMut::from(&frame[..frame.len() - 1]);
        assert_eq!(decode_frame::<Ping>(&mut buf).unwrap(), None);
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let a = Ping {
            seq: 1,
            note: "a".to_string(),
        };
        let b = Ping {
            seq: 2,
            note: "b".to_string(),
        };
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encode_frame(&a).unwrap());
        buf.extend_from_slice(&encode_frame(&b).unwrap());
        assert_eq!(decode_frame::<Ping>(&mut buf).unwrap().unwrap(), a);
        assert_eq!(decode_frame::<Ping>(&mut buf).unwrap().unwrap(), b);
        assert_eq!(decode_frame::<Ping>(&mut buf).unwrap(), None);
    }

    /// A frame body one byte over the limit is rejected on the encode side
    /// (instead of truncating its length prefix), while a body at exactly the
    /// limit round-trips. Every added `x` in `note` grows the JSON body by
    /// exactly one byte, so the body length can be dialled in precisely.
    #[test]
    fn encode_rejects_bodies_over_the_frame_limit() {
        let overhead = serde_json::to_vec(&Ping {
            seq: 7,
            note: String::new(),
        })
        .unwrap()
        .len();

        let over = Ping {
            seq: 7,
            note: "x".repeat(MAX_FRAME_LEN - overhead + 1),
        };
        let err = encode_frame(&over).unwrap_err();
        assert!(matches!(err, WbamError::Codec(_)), "got {err:?}");
        assert!(err.to_string().contains("exceeds maximum"));

        let at_limit = Ping {
            seq: 7,
            note: "x".repeat(MAX_FRAME_LEN - overhead),
        };
        let frame = encode_frame(&at_limit).unwrap();
        assert_eq!(frame.len(), 4 + MAX_FRAME_LEN);
        let mut buf = BytesMut::from(&frame[..]);
        let back: Ping = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(back, at_limit);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        buf.put_slice(&[0u8; 16]);
        assert!(decode_frame::<Ping>(&mut buf).is_err());
    }

    #[test]
    fn corrupt_body_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(3);
        buf.put_slice(b"not");
        assert!(decode_frame::<Ping>(&mut buf).is_err());
    }

    #[test]
    fn json_helpers_round_trip() {
        let msg = Ping {
            seq: 9,
            note: "trace".to_string(),
        };
        let json = to_json(&msg).unwrap();
        let back: Ping = from_json(&json).unwrap();
        assert_eq!(back, msg);
        assert!(from_json::<Ping>("{").is_err());
    }
}
