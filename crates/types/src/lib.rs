//! Shared vocabulary types for the White-Box Atomic Multicast (WBAM) workspace.
//!
//! This crate defines the identifiers, logical timestamps, ballots, application
//! messages, protocol events/actions and cluster configuration used by every
//! protocol implementation in the workspace:
//!
//! * [`ProcessId`], [`GroupId`], [`MsgId`] — opaque identifiers.
//! * [`Timestamp`] — the `(N × G)` lexicographically ordered logical timestamps
//!   of Skeen's protocol and the white-box protocol (paper §III).
//! * [`Ballot`] — the `(N × P)` leader ballots of the white-box protocol and of
//!   Paxos (paper §IV, Figure 3).
//! * [`AppMessage`], [`Destination`] — application messages with destination
//!   group sets.
//! * [`ClusterConfig`], [`GroupConfig`] — static cluster topology: disjoint
//!   groups of `2f + 1` processes each.
//! * [`Event`], [`Action`], [`Node`] — the sans-IO protocol interface shared by
//!   the simulator (`wbam-simnet`) and the real runtime.
//!
//! # Example
//!
//! ```
//! use wbam_types::{ClusterConfig, GroupId, Timestamp};
//!
//! // Three groups of three replicas each, plus two client processes.
//! let config = ClusterConfig::builder()
//!     .groups(3, 3)
//!     .clients(2)
//!     .build();
//! assert_eq!(config.groups().len(), 3);
//! assert_eq!(config.group(GroupId(0)).unwrap().members().len(), 3);
//!
//! // Timestamps are ordered lexicographically: first by time, then by group.
//! let a = Timestamp::new(3, GroupId(1));
//! let b = Timestamp::new(3, GroupId(2));
//! assert!(a < b);
//! assert!(Timestamp::BOTTOM < a);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod action;
pub mod ballot;
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod event;
pub mod ids;
pub mod message;
pub mod nemesis;
pub mod node;
pub mod phase;
pub mod timestamp;
pub mod wire;

pub use action::{Action, DeliveredMessage};
pub use ballot::Ballot;
pub use checkpoint::{Checkpoint, DeliveredFilter};
pub use config::{ClusterConfig, ClusterConfigBuilder, GroupConfig, SiteId};
pub use error::{ConfigError, WbamError};
pub use event::Event;
pub use ids::{ClientId, GroupId, MsgId, ProcessId};
pub use message::{AppMessage, Destination, Payload};
pub use nemesis::{CrashSpec, LeaderNudge, LinkFaults, NemesisPlan, PartitionSpec};
pub use node::{Node, TimerId};
pub use phase::Phase;
pub use timestamp::Timestamp;
