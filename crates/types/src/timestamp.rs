//! Logical timestamps used to totally order application messages.
//!
//! Timestamps are pairs `(t, g)` of a non-negative integer `t ∈ N` and a group
//! identifier `g ∈ G`, ordered lexicographically with a distinguished minimal
//! timestamp `⊥` (paper §III). The integer component is generated from a local
//! logical clock in the style of Lamport clocks; the group component breaks
//! ties so that timestamps issued by distinct groups never compare equal.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::GroupId;

/// A logical timestamp `(t, g) ∈ N × G`, with a distinguished minimum `⊥`.
///
/// The ordering is lexicographic: first by the integer component, then by the
/// group identifier. [`Timestamp::BOTTOM`] compares lower than every proper
/// timestamp.
///
/// ```
/// use wbam_types::{GroupId, Timestamp};
///
/// let a = Timestamp::new(1, GroupId(9));
/// let b = Timestamp::new(2, GroupId(0));
/// let c = Timestamp::new(2, GroupId(1));
/// assert!(Timestamp::BOTTOM < a);
/// assert!(a < b);
/// assert!(b < c);
/// assert_eq!(c.time(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Timestamp {
    /// The minimal timestamp `⊥`.
    #[default]
    Bottom,
    /// A proper timestamp `(time, group)`.
    Proper {
        /// Logical-clock component.
        time: u64,
        /// Issuing group, used to break ties.
        group: GroupId,
    },
}

impl Timestamp {
    /// The minimal timestamp `⊥`.
    pub const BOTTOM: Timestamp = Timestamp::Bottom;

    /// Creates a proper timestamp from a clock value and the issuing group.
    pub fn new(time: u64, group: GroupId) -> Self {
        Timestamp::Proper { time, group }
    }

    /// The integer component of the timestamp (`time(ts)` in the paper).
    ///
    /// `time(⊥)` is defined as `0`, which is consistent with `⊥` being the
    /// minimal timestamp: no proper timestamp issued by the protocols ever has
    /// a zero clock value because clocks are incremented before use.
    pub fn time(self) -> u64 {
        match self {
            Timestamp::Bottom => 0,
            Timestamp::Proper { time, .. } => time,
        }
    }

    /// The group component, if the timestamp is proper.
    pub fn group(self) -> Option<GroupId> {
        match self {
            Timestamp::Bottom => None,
            Timestamp::Proper { group, .. } => Some(group),
        }
    }

    /// Whether this timestamp is the minimal timestamp `⊥`.
    pub fn is_bottom(self) -> bool {
        matches!(self, Timestamp::Bottom)
    }

    /// Returns the maximum of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Computes the global timestamp of a message from a set of local
    /// timestamp proposals: the maximum of the proposals (paper Figure 1
    /// line 14 / Figure 4 line 19).
    ///
    /// Returns [`Timestamp::BOTTOM`] for an empty iterator; the protocols never
    /// call this with an empty proposal set.
    pub fn global_of<I: IntoIterator<Item = Timestamp>>(proposals: I) -> Timestamp {
        proposals
            .into_iter()
            .fold(Timestamp::BOTTOM, Timestamp::max)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Timestamp::Bottom => write!(f, "⊥"),
            Timestamp::Proper { time, group } => write!(f, "({time},{group})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bottom_is_minimal() {
        assert!(Timestamp::BOTTOM < Timestamp::new(0, GroupId(0)));
        assert!(Timestamp::BOTTOM < Timestamp::new(1, GroupId(0)));
        assert_eq!(Timestamp::BOTTOM, Timestamp::default());
        assert!(Timestamp::BOTTOM.is_bottom());
        assert!(!Timestamp::new(1, GroupId(0)).is_bottom());
    }

    #[test]
    fn lexicographic_order() {
        let a = Timestamp::new(1, GroupId(9));
        let b = Timestamp::new(2, GroupId(0));
        let c = Timestamp::new(2, GroupId(3));
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn time_and_group_accessors() {
        let ts = Timestamp::new(5, GroupId(2));
        assert_eq!(ts.time(), 5);
        assert_eq!(ts.group(), Some(GroupId(2)));
        assert_eq!(Timestamp::BOTTOM.time(), 0);
        assert_eq!(Timestamp::BOTTOM.group(), None);
    }

    #[test]
    fn global_is_max_of_locals() {
        let locals = vec![
            Timestamp::new(3, GroupId(0)),
            Timestamp::new(7, GroupId(1)),
            Timestamp::new(7, GroupId(0)),
        ];
        assert_eq!(Timestamp::global_of(locals), Timestamp::new(7, GroupId(1)));
        assert_eq!(Timestamp::global_of(Vec::new()), Timestamp::BOTTOM);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Timestamp::BOTTOM.to_string(), "⊥");
        assert_eq!(Timestamp::new(4, GroupId(1)).to_string(), "(4,g1)");
    }

    fn arb_timestamp() -> impl Strategy<Value = Timestamp> {
        prop_oneof![
            Just(Timestamp::BOTTOM),
            (0u64..1_000, 0u32..16).prop_map(|(t, g)| Timestamp::new(t, GroupId(g))),
        ]
    }

    proptest! {
        /// The order is total and the max operator is consistent with it.
        #[test]
        fn max_is_consistent_with_order(a in arb_timestamp(), b in arb_timestamp()) {
            let m = a.max(b);
            prop_assert!(m >= a && m >= b);
            prop_assert!(m == a || m == b);
        }

        /// Lexicographic order: comparing times first, then groups.
        #[test]
        fn order_matches_tuple_order(
            t1 in 0u64..1_000, g1 in 0u32..16,
            t2 in 0u64..1_000, g2 in 0u32..16,
        ) {
            let a = Timestamp::new(t1, GroupId(g1));
            let b = Timestamp::new(t2, GroupId(g2));
            prop_assert_eq!(a.cmp(&b), (t1, g1).cmp(&(t2, g2)));
        }

        /// `global_of` returns an element of the input (or ⊥ for empty input) and
        /// dominates every element.
        #[test]
        fn global_of_dominates(inputs in prop::collection::vec(arb_timestamp(), 0..8)) {
            let g = Timestamp::global_of(inputs.clone());
            for ts in &inputs {
                prop_assert!(g >= *ts);
            }
            if !inputs.is_empty() {
                prop_assert!(inputs.contains(&g) || g.is_bottom() && inputs.iter().all(|t| t.is_bottom()));
            }
        }
    }
}
