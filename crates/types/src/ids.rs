//! Opaque identifiers for processes, groups, clients and application messages.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a process in the system (`p ∈ P` in the paper).
///
/// Process identifiers are globally unique across all groups and clients. They
/// are totally ordered; the order is used to break ties between ballots
/// (paper §IV: "Ballots are ordered lexicographically using an arbitrary total
/// order on processes").
///
/// ```
/// use wbam_types::ProcessId;
/// let p = ProcessId(7);
/// assert_eq!(p.to_string(), "p7");
/// assert!(ProcessId(1) < ProcessId(2));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Numeric value of the identifier.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// Identifier of a process group (`g ∈ G` in the paper).
///
/// Groups are disjoint sets of `2f + 1` processes. The total order on group
/// identifiers breaks ties between logical [`Timestamp`](crate::Timestamp)s
/// with equal integer components.
///
/// ```
/// use wbam_types::GroupId;
/// assert!(GroupId(0) < GroupId(1));
/// assert_eq!(GroupId(3).to_string(), "g3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Numeric value of the identifier.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for GroupId {
    fn from(v: u32) -> Self {
        GroupId(v)
    }
}

/// Identifier of a client process (a multicaster that is not a group member).
///
/// Clients are ordinary processes as far as the protocols are concerned; this
/// newtype exists so that workload generators and the experiment harness can
/// statically distinguish load-generating processes from replicas.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u32);

impl ClientId {
    /// Numeric value of the identifier.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Globally unique identifier of an application message (`m ∈ M` in the paper).
///
/// The paper assumes "all messages multicast in a single execution are unique";
/// we make that explicit by tagging every application message with the sender
/// process and a per-sender sequence number.
///
/// ```
/// use wbam_types::{MsgId, ProcessId};
/// let a = MsgId::new(ProcessId(1), 0);
/// let b = MsgId::new(ProcessId(1), 1);
/// assert_ne!(a, b);
/// assert!(a < b);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MsgId {
    /// The process that multicast the message.
    pub sender: ProcessId,
    /// Per-sender sequence number.
    pub seq: u64,
}

impl MsgId {
    /// Creates a message identifier from a sender and a per-sender sequence number.
    pub fn new(sender: ProcessId, seq: u64) -> Self {
        MsgId { sender, seq }
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m({},{})", self.sender, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_and_order() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert!(ProcessId(1) < ProcessId(10));
        assert_eq!(ProcessId::from(4), ProcessId(4));
        assert_eq!(ProcessId(9).value(), 9);
    }

    #[test]
    fn group_id_display_and_order() {
        assert_eq!(GroupId(0).to_string(), "g0");
        assert!(GroupId(2) > GroupId(1));
        assert_eq!(GroupId::from(5), GroupId(5));
        assert_eq!(GroupId(7).value(), 7);
    }

    #[test]
    fn client_id_display() {
        assert_eq!(ClientId(11).to_string(), "c11");
        assert_eq!(ClientId(11).value(), 11);
    }

    #[test]
    fn msg_id_uniqueness_and_order() {
        let a = MsgId::new(ProcessId(1), 5);
        let b = MsgId::new(ProcessId(1), 6);
        let c = MsgId::new(ProcessId(2), 0);
        assert_ne!(a, b);
        assert!(a < b);
        // Ordering is lexicographic on (sender, seq).
        assert!(b < c);
        assert_eq!(a.to_string(), "m(p1,5)");
    }

    #[test]
    fn ids_are_serializable() {
        let id = MsgId::new(ProcessId(3), 42);
        let json = serde_json::to_string(&id).unwrap();
        let back: MsgId = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
    }
}
