//! The sans-IO protocol node interface shared by the simulator and the runtime.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::action::Action;
use crate::event::Event;
use crate::ids::ProcessId;

/// Identifier of a timer armed by a node, scoped to that node.
///
/// Protocols choose their own timer-id conventions (for example "retry timer
/// for message *k*" or "heartbeat"); runtimes treat the identifier as opaque.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimerId(pub u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A deterministic protocol state machine ("sans-IO" node).
///
/// A node consumes [`Event`]s and produces [`Action`]s; it never performs IO
/// itself. This makes every protocol in the workspace runnable both under the
/// deterministic discrete-event simulator (`wbam-simnet`) and under the real
/// multi-threaded runtime (`wbam-runtime`), and makes protocol logic directly
/// property-testable.
///
/// Implementations must be deterministic: the output may depend only on the
/// sequence of events received so far (and the node's static configuration).
pub trait Node {
    /// The protocol's wire message type.
    type Msg;

    /// The identifier of the process this node plays.
    fn id(&self) -> ProcessId;

    /// Handles one input event, returning the actions to execute.
    ///
    /// `now` is the time elapsed since the node was started, as measured by the
    /// runtime; deterministic protocols use it only for arming timers and for
    /// instrumentation, never to branch on wall-clock values.
    fn on_event(&mut self, now: Duration, event: Event<Self::Msg>) -> Vec<Action<Self::Msg>>;

    /// Optional downcast hook: concrete node types may return `Some(self)` so
    /// that runtimes and test harnesses can inspect protocol state behind a
    /// `dyn Node` (the schedule explorer uses this to include per-replica
    /// state in failure reports). The default opts out.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy echo node used to exercise the trait plumbing.
    struct Echo {
        id: ProcessId,
        peer: ProcessId,
    }

    impl Node for Echo {
        type Msg = u64;

        fn id(&self) -> ProcessId {
            self.id
        }

        fn on_event(&mut self, _now: Duration, event: Event<u64>) -> Vec<Action<u64>> {
            match event {
                Event::Message { msg, .. } => vec![Action::send(self.peer, msg + 1)],
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut node: Box<dyn Node<Msg = u64>> = Box::new(Echo {
            id: ProcessId(0),
            peer: ProcessId(1),
        });
        assert_eq!(node.id(), ProcessId(0));
        let out = node.on_event(Duration::ZERO, Event::message(ProcessId(1), 41));
        assert_eq!(out, vec![Action::send(ProcessId(1), 42)]);
        assert!(node.on_event(Duration::ZERO, Event::Init).is_empty());
    }

    #[test]
    fn timer_id_display() {
        assert_eq!(TimerId(3).to_string(), "t3");
    }
}
