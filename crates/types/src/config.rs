//! Static cluster configuration: disjoint process groups, clients and sites.
//!
//! The paper's system model (§II) fixes a set of disjoint process groups
//! `G ⊆ 2^P`, each consisting of `2f + 1` processes of which at most `f` may
//! crash. Clients (multicasting processes) are ordinary processes outside all
//! groups. For the WAN experiments (§VI) every replica additionally lives in a
//! *site* (data centre); inter-site latency dominates delivery latency there.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::ids::{ClientId, GroupId, ProcessId};

/// Identifier of a site (data centre / region) used by WAN latency models.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Configuration of a single process group: its identifier and members.
///
/// A group has `2f + 1` members; a *quorum* is any set of `f + 1` members.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupConfig {
    id: GroupId,
    members: Vec<ProcessId>,
}

impl GroupConfig {
    /// Creates a group configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EvenGroupSize`] if the member count is even or
    /// zero — groups must have `2f + 1 ≥ 1` members.
    pub fn new(id: GroupId, members: Vec<ProcessId>) -> Result<Self, ConfigError> {
        if members.is_empty() || members.len() % 2 == 0 {
            return Err(ConfigError::EvenGroupSize {
                group: id,
                size: members.len(),
            });
        }
        Ok(GroupConfig { id, members })
    }

    /// The group identifier.
    pub fn id(&self) -> GroupId {
        self.id
    }

    /// The group members, in configuration order. The first member is the
    /// conventional initial leader.
    pub fn members(&self) -> &[ProcessId] {
        &self.members
    }

    /// Number of members (`2f + 1`).
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The failure threshold `f`.
    pub fn f(&self) -> usize {
        (self.members.len() - 1) / 2
    }

    /// Size of a quorum (`f + 1`).
    pub fn quorum_size(&self) -> usize {
        self.f() + 1
    }

    /// The conventional initial leader of the group (its first member).
    pub fn initial_leader(&self) -> ProcessId {
        self.members[0]
    }

    /// Whether the given process belongs to this group.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.members.contains(&p)
    }
}

/// Static configuration of the whole cluster: groups, clients and site placement.
///
/// Build one with [`ClusterConfig::builder`]:
///
/// ```
/// use wbam_types::{ClusterConfig, GroupId, ProcessId};
///
/// let cfg = ClusterConfig::builder().groups(2, 3).clients(4).build();
/// assert_eq!(cfg.groups().len(), 2);
/// assert_eq!(cfg.clients().len(), 4);
/// assert_eq!(cfg.group_of(ProcessId(0)), Some(GroupId(0)));
/// assert_eq!(cfg.group_of(cfg.clients()[0]), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    groups: Vec<GroupConfig>,
    clients: Vec<ProcessId>,
    /// Site of each process; processes absent from the map share site 0.
    sites: BTreeMap<ProcessId, SiteId>,
    num_sites: u32,
}

impl ClusterConfig {
    /// Starts building a cluster configuration.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// All groups.
    pub fn groups(&self) -> &[GroupConfig] {
        &self.groups
    }

    /// Looks up a group by identifier.
    pub fn group(&self, g: GroupId) -> Option<&GroupConfig> {
        self.groups.iter().find(|gc| gc.id() == g)
    }

    /// All group identifiers, ascending.
    pub fn group_ids(&self) -> Vec<GroupId> {
        self.groups.iter().map(|g| g.id()).collect()
    }

    /// Client (non-replica) processes.
    pub fn clients(&self) -> &[ProcessId] {
        &self.clients
    }

    /// All processes: replicas of every group followed by clients.
    pub fn all_processes(&self) -> Vec<ProcessId> {
        let mut v: Vec<ProcessId> = self
            .groups
            .iter()
            .flat_map(|g| g.members().iter().copied())
            .collect();
        v.extend(self.clients.iter().copied());
        v
    }

    /// Total number of processes (replicas + clients).
    pub fn num_processes(&self) -> usize {
        self.groups.iter().map(|g| g.size()).sum::<usize>() + self.clients.len()
    }

    /// The group a process belongs to, or `None` for clients.
    pub fn group_of(&self, p: ProcessId) -> Option<GroupId> {
        self.groups.iter().find(|g| g.contains(p)).map(|g| g.id())
    }

    /// Whether the process is a client (not a member of any group).
    pub fn is_client(&self, p: ProcessId) -> bool {
        self.group_of(p).is_none()
    }

    /// The site a process resides in (site 0 when not explicitly placed).
    pub fn site_of(&self, p: ProcessId) -> SiteId {
        self.sites.get(&p).copied().unwrap_or(SiteId(0))
    }

    /// Number of distinct sites in the configuration (at least 1).
    pub fn num_sites(&self) -> u32 {
        self.num_sites.max(1)
    }

    /// The conventional initial leader of each group.
    pub fn initial_leaders(&self) -> BTreeMap<GroupId, ProcessId> {
        self.groups
            .iter()
            .map(|g| (g.id(), g.initial_leader()))
            .collect()
    }

    /// Validates internal consistency: disjoint groups, unique process ids.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::DuplicateProcess`] when a process appears in two
    /// groups or both as a replica and a client.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let mut seen = std::collections::BTreeSet::new();
        for p in self.all_processes() {
            if !seen.insert(p) {
                return Err(ConfigError::DuplicateProcess(p));
            }
        }
        Ok(())
    }
}

/// Builder for [`ClusterConfig`].
///
/// Process identifiers are assigned densely: replicas of group 0 first, then
/// group 1, and so on, followed by clients. With `spread_over_sites(k)` each
/// group places replica `i` in site `i mod k`, which matches the paper's WAN
/// deployment where "each group has a replica in each data centre".
#[derive(Debug, Clone, Default)]
pub struct ClusterConfigBuilder {
    num_groups: usize,
    group_size: usize,
    num_clients: usize,
    num_sites: u32,
    clients_site: Option<SiteId>,
}

impl ClusterConfigBuilder {
    /// Sets the number of groups and the size (`2f + 1`) of every group.
    pub fn groups(mut self, num_groups: usize, group_size: usize) -> Self {
        self.num_groups = num_groups;
        self.group_size = group_size;
        self
    }

    /// Sets the number of client processes.
    pub fn clients(mut self, num_clients: usize) -> Self {
        self.num_clients = num_clients;
        self
    }

    /// Spreads the replicas of every group over `k` sites (replica `i` goes to
    /// site `i mod k`). Clients go to site 0 unless [`Self::clients_at_site`]
    /// is used.
    pub fn spread_over_sites(mut self, k: u32) -> Self {
        self.num_sites = k;
        self
    }

    /// Places all clients at the given site.
    pub fn clients_at_site(mut self, site: SiteId) -> Self {
        self.clients_site = Some(site);
        self
    }

    /// Builds the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the group size is even or zero, or if no groups were
    /// configured. Use [`Self::try_build`] for a fallible version.
    pub fn build(self) -> ClusterConfig {
        self.try_build().expect("invalid cluster configuration")
    }

    /// Builds the configuration, reporting errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoGroups`] if no groups were configured and
    /// [`ConfigError::EvenGroupSize`] if the group size is even or zero.
    pub fn try_build(self) -> Result<ClusterConfig, ConfigError> {
        if self.num_groups == 0 {
            return Err(ConfigError::NoGroups);
        }
        let mut groups = Vec::with_capacity(self.num_groups);
        let mut sites = BTreeMap::new();
        let mut next = 0u32;
        for gi in 0..self.num_groups {
            let mut members = Vec::with_capacity(self.group_size);
            for ri in 0..self.group_size {
                let p = ProcessId(next);
                next += 1;
                members.push(p);
                if self.num_sites > 1 {
                    sites.insert(p, SiteId(ri as u32 % self.num_sites));
                }
            }
            groups.push(GroupConfig::new(GroupId(gi as u32), members)?);
        }
        let mut clients = Vec::with_capacity(self.num_clients);
        for _ in 0..self.num_clients {
            let p = ProcessId(next);
            next += 1;
            clients.push(p);
            if let Some(site) = self.clients_site {
                sites.insert(p, site);
            }
        }
        let cfg = ClusterConfig {
            groups,
            clients,
            sites,
            num_sites: self.num_sites.max(1),
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Convenience: a client identifier mapped onto the process identifier space of
/// a configuration (clients follow all replicas).
pub fn client_process_id(cfg: &ClusterConfig, client: ClientId) -> Option<ProcessId> {
    cfg.clients().get(client.0 as usize).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let cfg = ClusterConfig::builder().groups(2, 3).clients(2).build();
        assert_eq!(
            cfg.group(GroupId(0)).unwrap().members(),
            &[ProcessId(0), ProcessId(1), ProcessId(2)]
        );
        assert_eq!(
            cfg.group(GroupId(1)).unwrap().members(),
            &[ProcessId(3), ProcessId(4), ProcessId(5)]
        );
        assert_eq!(cfg.clients(), &[ProcessId(6), ProcessId(7)]);
        assert_eq!(cfg.num_processes(), 8);
        assert_eq!(cfg.all_processes().len(), 8);
    }

    #[test]
    fn group_membership_lookup() {
        let cfg = ClusterConfig::builder().groups(2, 3).clients(1).build();
        assert_eq!(cfg.group_of(ProcessId(4)), Some(GroupId(1)));
        assert_eq!(cfg.group_of(ProcessId(6)), None);
        assert!(cfg.is_client(ProcessId(6)));
        assert!(!cfg.is_client(ProcessId(0)));
    }

    #[test]
    fn quorum_arithmetic() {
        let g = GroupConfig::new(
            GroupId(0),
            vec![
                ProcessId(0),
                ProcessId(1),
                ProcessId(2),
                ProcessId(3),
                ProcessId(4),
            ],
        )
        .unwrap();
        assert_eq!(g.size(), 5);
        assert_eq!(g.f(), 2);
        assert_eq!(g.quorum_size(), 3);
        assert_eq!(g.initial_leader(), ProcessId(0));
        assert!(g.contains(ProcessId(3)));
        assert!(!g.contains(ProcessId(9)));
    }

    #[test]
    fn even_group_sizes_are_rejected() {
        assert!(GroupConfig::new(GroupId(0), vec![ProcessId(0), ProcessId(1)]).is_err());
        assert!(GroupConfig::new(GroupId(0), vec![]).is_err());
        assert!(ClusterConfig::builder().groups(1, 4).try_build().is_err());
        assert!(ClusterConfig::builder().try_build().is_err());
    }

    #[test]
    fn site_placement_round_robin() {
        let cfg = ClusterConfig::builder()
            .groups(2, 3)
            .clients(1)
            .spread_over_sites(3)
            .clients_at_site(SiteId(1))
            .build();
        // Replica i of each group lives in site i.
        assert_eq!(cfg.site_of(ProcessId(0)), SiteId(0));
        assert_eq!(cfg.site_of(ProcessId(1)), SiteId(1));
        assert_eq!(cfg.site_of(ProcessId(2)), SiteId(2));
        assert_eq!(cfg.site_of(ProcessId(3)), SiteId(0));
        assert_eq!(cfg.site_of(ProcessId(6)), SiteId(1));
        assert_eq!(cfg.num_sites(), 3);
    }

    #[test]
    fn default_single_site() {
        let cfg = ClusterConfig::builder().groups(1, 3).build();
        assert_eq!(cfg.num_sites(), 1);
        assert_eq!(cfg.site_of(ProcessId(0)), SiteId(0));
    }

    #[test]
    fn initial_leaders_are_first_members() {
        let cfg = ClusterConfig::builder().groups(3, 3).build();
        let leaders = cfg.initial_leaders();
        assert_eq!(leaders[&GroupId(0)], ProcessId(0));
        assert_eq!(leaders[&GroupId(1)], ProcessId(3));
        assert_eq!(leaders[&GroupId(2)], ProcessId(6));
    }

    #[test]
    fn client_process_id_mapping() {
        let cfg = ClusterConfig::builder().groups(1, 3).clients(2).build();
        assert_eq!(client_process_id(&cfg, ClientId(0)), Some(ProcessId(3)));
        assert_eq!(client_process_id(&cfg, ClientId(1)), Some(ProcessId(4)));
        assert_eq!(client_process_id(&cfg, ClientId(2)), None);
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = ClusterConfig::builder()
            .groups(2, 3)
            .clients(1)
            .spread_over_sites(3)
            .build();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ClusterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
