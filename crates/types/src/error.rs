//! Error types for the WBAM workspace.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{GroupId, ProcessId};

/// Errors produced when constructing cluster configurations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigError {
    /// A group was configured with an even (or zero) number of members; groups
    /// must contain `2f + 1` processes.
    EvenGroupSize {
        /// The offending group.
        group: GroupId,
        /// The configured member count.
        size: usize,
    },
    /// No groups were configured.
    NoGroups,
    /// The same process appears in two groups or as both a replica and a client.
    DuplicateProcess(ProcessId),
    /// A replica (or client) referenced a group that does not exist in the
    /// cluster configuration.
    UnknownGroup {
        /// The missing group.
        group: GroupId,
    },
    /// A replica was configured for a group it is not a member of.
    NotAMember {
        /// The misconfigured replica.
        process: ProcessId,
        /// The group it claimed to belong to.
        group: GroupId,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EvenGroupSize { group, size } => {
                write!(
                    f,
                    "group {group} has {size} members, expected an odd number (2f + 1)"
                )
            }
            ConfigError::NoGroups => write!(f, "cluster configuration contains no groups"),
            ConfigError::DuplicateProcess(p) => {
                write!(f, "process {p} appears more than once in the configuration")
            }
            ConfigError::UnknownGroup { group } => {
                write!(f, "group {group} not in cluster configuration")
            }
            ConfigError::NotAMember { process, group } => {
                write!(f, "replica {process} is not a member of group {group}")
            }
        }
    }
}

impl Error for ConfigError {}

/// Errors produced by WBAM protocol operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WbamError {
    /// An application message was submitted with an empty destination set.
    EmptyDestination,
    /// A message was addressed to a group that does not exist in the
    /// configuration.
    UnknownGroup(GroupId),
    /// An operation referenced a process not present in the configuration.
    UnknownProcess(ProcessId),
    /// A multicast was submitted to a process that is not currently able to
    /// handle it (for instance a recovering replica).
    NotReady {
        /// The process that rejected the operation.
        process: ProcessId,
        /// Human-readable reason.
        reason: String,
    },
    /// A configuration error.
    Config(ConfigError),
    /// Encoding or decoding of a wire message failed.
    Codec(String),
    /// An IO operation of a networked runtime failed (bind, connect, read or
    /// write on a transport socket). Carries the rendered `std::io::Error`
    /// so the error stays `Clone` and serialisable.
    Io(String),
}

impl fmt::Display for WbamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WbamError::EmptyDestination => write!(f, "destination group set is empty"),
            WbamError::UnknownGroup(g) => write!(f, "unknown destination group {g}"),
            WbamError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            WbamError::NotReady { process, reason } => {
                write!(f, "process {process} cannot handle the request: {reason}")
            }
            WbamError::Config(e) => write!(f, "configuration error: {e}"),
            WbamError::Codec(e) => write!(f, "codec error: {e}"),
            WbamError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl Error for WbamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WbamError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for WbamError {
    fn from(e: ConfigError) -> Self {
        WbamError::Config(e)
    }
}

impl From<std::io::Error> for WbamError {
    fn from(e: std::io::Error) -> Self {
        WbamError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ConfigError::EvenGroupSize {
            group: GroupId(1),
            size: 4,
        };
        assert!(e.to_string().contains("g1"));
        assert!(e.to_string().contains('4'));
        assert_eq!(
            WbamError::EmptyDestination.to_string(),
            "destination group set is empty"
        );
        assert!(WbamError::UnknownGroup(GroupId(7))
            .to_string()
            .contains("g7"));
        assert!(WbamError::UnknownProcess(ProcessId(7))
            .to_string()
            .contains("p7"));
    }

    #[test]
    fn config_error_converts_to_wbam_error_with_source() {
        let e: WbamError = ConfigError::NoGroups.into();
        assert!(matches!(e, WbamError::Config(_)));
        assert!(e.source().is_some());
        assert!(WbamError::EmptyDestination.source().is_none());
    }

    #[test]
    fn not_ready_carries_reason() {
        let e = WbamError::NotReady {
            process: ProcessId(2),
            reason: "recovering".to_string(),
        };
        assert!(e.to_string().contains("recovering"));
    }

    #[test]
    fn io_errors_convert_and_render() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "refused");
        let e: WbamError = io.into();
        assert!(matches!(e, WbamError::Io(_)));
        assert!(e.to_string().contains("refused"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WbamError>();
        assert_send_sync::<ConfigError>();
    }
}
