//! A partitioned, replicated key-value store on top of atomic multicast —
//! the motivating application of the paper (§I).
//!
//! Keys are hashed over three partitions (groups); every partition is
//! replicated over three replicas. Single-key writes are multicast to one
//! group; cross-partition transfers are multicast to the two groups owning
//! the involved accounts. Because atomic multicast delivers every group the
//! projection of one total order, all replicas of a partition end up with the
//! same state and money is never created or destroyed.
//!
//! Run with: `cargo run --example partitioned_kv`

use std::collections::BTreeMap;
use std::time::Duration;

use wbam::harness::{ClusterSpec, Protocol, ProtocolSim};
use wbam::kvstore::{KvCommand, KvStore, Partitioner};
use wbam::types::{GroupId, ProcessId};

fn main() {
    let num_partitions = 3u32;
    let spec = ClusterSpec::constant_delta(num_partitions as usize, 3, Duration::from_millis(2));
    let mut sim = ProtocolSim::build(Protocol::WhiteBox, &spec);
    let partitioner = Partitioner::new(num_partitions);

    // Build a small banking workload: credit ten accounts, then transfer
    // between random pairs (many of which cross partitions).
    let accounts: Vec<String> = (0..10).map(|i| format!("acct-{i}")).collect();
    let mut commands: Vec<KvCommand> = accounts.iter().map(|a| KvCommand::put(a, 100)).collect();
    for i in 0..20 {
        let from = &accounts[i % accounts.len()];
        let to = &accounts[(i * 7 + 3) % accounts.len()];
        if from != to {
            commands.push(KvCommand::transfer(from, to, 5));
        }
    }

    // Encode every command as a multicast addressed to the partitions of the
    // keys it touches, and submit them all.
    let mut payload_of = BTreeMap::new();
    for (i, cmd) in commands.iter().enumerate() {
        let dest: Vec<GroupId> = cmd
            .keys()
            .iter()
            .map(|k| partitioner.partition_of(k))
            .collect();
        let at = Duration::from_millis(i as u64);
        // Encode the command as JSON so replicas can decode and apply it.
        let body = serde_json::to_vec(cmd).expect("encode command");
        let id = sim.submit_with_payload(at, 0, &dest, body);
        payload_of.insert(id, cmd.clone());
    }

    sim.run_until_quiescent(Duration::from_secs(30));
    let metrics = sim.metrics();

    // Materialise the store at every replica by applying its delivery order.
    let cluster = sim.cluster().clone();
    let mut stores: BTreeMap<ProcessId, KvStore> = BTreeMap::new();
    for gc in cluster.groups() {
        for member in gc.members() {
            let mut store = KvStore::with_partitioner(gc.id(), partitioner);
            for msg_id in metrics.delivery_order_at(*member) {
                let cmd = &payload_of[&msg_id];
                store.apply(cmd);
            }
            stores.insert(*member, store);
        }
    }

    println!("partitioned replicated KV store over white-box atomic multicast");
    println!("----------------------------------------------------------------");
    // Replicas of the same partition must agree exactly.
    for gc in cluster.groups() {
        let members = gc.members();
        let reference = stores[&members[0]].snapshot().clone();
        for member in members {
            assert_eq!(
                stores[member].snapshot(),
                &reference,
                "replica {member} of {} diverged",
                gc.id()
            );
        }
        println!(
            "partition {}: {} keys, all {} replicas identical",
            gc.id(),
            reference.len(),
            members.len()
        );
    }
    // Conservation of money: total across partitions equals the initial credit.
    let total: i64 = cluster
        .groups()
        .iter()
        .map(|gc| stores[&gc.members()[0]].total())
        .sum();
    println!(
        "total balance across partitions: {total} (expected {})",
        100 * accounts.len()
    );
    assert_eq!(total, 100 * accounts.len() as i64);
    println!("cross-partition transfers preserved the balance invariant ✓");
}
