//! A tour of the three fault-tolerant protocols in the paper's WAN setting:
//! 10 groups replicated across three regions (Oregon, N. Virginia, England)
//! with the paper's round-trip times (60 / 75 / 130 ms).
//!
//! For each protocol the example multicasts a single message to two groups and
//! prints the delivery latency, then runs a small closed-loop workload and
//! prints mean latency and throughput — a miniature version of the Figure 8
//! experiment.
//!
//! Run with: `cargo run --release --example wan_tour`

use std::time::Duration;

use wbam::harness::{run_closed_loop, ClosedLoopWorkload, ClusterSpec, Protocol, ProtocolSim};
use wbam::types::GroupId;

fn main() {
    println!("WAN tour: Oregon / N. Virginia / England, 10 groups × 3 replicas");
    println!("=================================================================");

    println!("\nsingle-message delivery latency (2 destination groups):");
    for protocol in Protocol::evaluated() {
        let spec = ClusterSpec::wan(1);
        let mut sim = ProtocolSim::build(protocol, &spec);
        let id = sim.submit(Duration::ZERO, 0, &[GroupId(0), GroupId(1)], 20);
        sim.run_until_quiescent(Duration::from_secs(30));
        let latency = sim.metrics().latency(id).expect("delivered");
        println!(
            "  {:<9} {:>8.1} ms",
            protocol.label(),
            latency.as_secs_f64() * 1e3
        );
    }

    println!("\nclosed-loop workload (40 clients, 2 destination groups, ~3 s):");
    println!("  protocol   mean latency    throughput");
    for protocol in Protocol::evaluated() {
        let spec = ClusterSpec::wan(40);
        let mut sim = ProtocolSim::build(protocol, &spec);
        let workload = ClosedLoopWorkload {
            dest_groups: 2,
            duration: Duration::from_secs(2),
            warmup: Duration::from_millis(500),
            ..ClosedLoopWorkload::default()
        };
        let result = run_closed_loop(&mut sim, &workload);
        println!(
            "  {:<9} {:>9.1} ms   {:>8.1} msg/s",
            protocol.label(),
            result.latency.mean.as_secs_f64() * 1e3,
            result.throughput.messages_per_second
        );
    }
    println!("\nThe white-box protocol (WbCast) should show the lowest latency and");
    println!("highest throughput, FastCast second, fault-tolerant Skeen last —");
    println!("the qualitative result of Figure 8 in the paper.");
}
