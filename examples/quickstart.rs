//! Quickstart: run the white-box atomic multicast protocol on a simulated
//! cluster of two groups × three replicas, multicast a handful of messages and
//! print the per-replica delivery orders — demonstrating that every group
//! receives the projection of one total order.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use wbam::harness::{ClusterSpec, Protocol, ProtocolSim};
use wbam::types::GroupId;

fn main() {
    // Two groups of three replicas, 5 ms one-way network delay.
    let spec = ClusterSpec::constant_delta(2, 3, Duration::from_millis(5));
    let mut sim = ProtocolSim::build(Protocol::WhiteBox, &spec);

    // Multicast five messages: some to both groups, some to a single group.
    let destinations = [
        vec![GroupId(0), GroupId(1)],
        vec![GroupId(0)],
        vec![GroupId(0), GroupId(1)],
        vec![GroupId(1)],
        vec![GroupId(0), GroupId(1)],
    ];
    let mut ids = Vec::new();
    for (i, dest) in destinations.iter().enumerate() {
        let at = Duration::from_millis(i as u64);
        ids.push(sim.submit(at, 0, dest, 20));
    }

    sim.run_until_quiescent(Duration::from_secs(10));
    let metrics = sim.metrics();

    println!("white-box atomic multicast — quickstart");
    println!("---------------------------------------");
    for (id, dest) in ids.iter().zip(destinations.iter()) {
        let latency = metrics
            .latency(*id)
            .map(|l| format!("{:.1} ms", l.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "not delivered".to_string());
        println!("{id} -> {dest:?}: delivered in {latency}");
    }
    println!();
    println!("per-replica delivery orders (the projection of one total order):");
    for p in sim.cluster().all_processes() {
        if sim.cluster().is_client(p) {
            continue;
        }
        let order: Vec<String> = metrics
            .delivery_order_at(p)
            .iter()
            .map(|m| m.to_string())
            .collect();
        let group = sim.cluster().group_of(p).unwrap();
        println!("  {p} ({group}): {}", order.join(" , "));
    }
    println!();
    println!("protocol messages sent: {}", sim.stats().messages_sent);
}
