//! Leader failover: crash a group leader in the middle of a run and watch the
//! white-box protocol recover (Figure 4, lines 35–68) without losing agreement
//! on the delivery order.
//!
//! The example crashes group 0's leader, explicitly triggers recovery at one
//! of its followers (standing in for the leader-election oracle the paper
//! assumes), and keeps multicasting throughout. At the end it checks that the
//! surviving replicas of each group agree on their delivery order and that
//! messages submitted after the failover are still delivered.
//!
//! Run with: `cargo run --example leader_failover`

use std::time::Duration;

use wbam::harness::{ClusterSpec, Protocol, ProtocolSim};
use wbam::types::{GroupId, ProcessId};

fn main() {
    let spec = ClusterSpec::constant_delta(2, 3, Duration::from_millis(2));
    let mut sim = ProtocolSim::build(Protocol::WhiteBox, &spec);
    let dest = [GroupId(0), GroupId(1)];

    // Phase 1: normal operation.
    let mut before = Vec::new();
    for i in 0..5u64 {
        before.push(sim.submit(Duration::from_millis(i * 5), 0, &dest, 20));
    }

    // Phase 2: crash group 0's initial leader (p0) at t = 40 ms and have
    // follower p1 take over at t = 60 ms.
    let crash_at = Duration::from_millis(40);
    let takeover_at = Duration::from_millis(60);
    sim.crash(crash_at, ProcessId(0));
    sim.become_leader(takeover_at, ProcessId(1));

    // Phase 3: keep multicasting after the failover.
    let mut after = Vec::new();
    for i in 0..5u64 {
        after.push(sim.submit(Duration::from_millis(100 + i * 5), 0, &dest, 20));
    }

    sim.run_until_quiescent(Duration::from_secs(60));
    let metrics = sim.metrics();

    println!("leader failover with the white-box protocol");
    println!("--------------------------------------------");
    println!("crashed p0 (leader of g0) at {crash_at:?}; p1 took over at {takeover_at:?}");
    println!();
    let delivered_before = before
        .iter()
        .filter(|m| metrics.is_partially_delivered(**m))
        .count();
    let delivered_after = after
        .iter()
        .filter(|m| metrics.is_partially_delivered(**m))
        .count();
    println!("messages submitted before the crash and delivered: {delivered_before}/5");
    println!("messages submitted after the failover and delivered: {delivered_after}/5");
    assert_eq!(
        delivered_after, 5,
        "post-failover messages must all be delivered"
    );

    // Surviving replicas of group 0 (p1, p2) agree; group 1 replicas agree.
    let order_p1 = metrics.delivery_order_at(ProcessId(1));
    let order_p2 = metrics.delivery_order_at(ProcessId(2));
    let common = order_p1.len().min(order_p2.len());
    assert_eq!(
        &order_p1[..common],
        &order_p2[..common],
        "surviving replicas of g0 disagree"
    );
    println!();
    println!(
        "surviving g0 replicas agree on a delivery order of {} messages",
        common
    );
    let order_p3 = metrics.delivery_order_at(ProcessId(3));
    println!("g1 leader delivered {} messages", order_p3.len());
    println!("failover preserved agreement ✓");
}
