//! WBAM — a Rust reproduction of *"White-Box Atomic Multicast"* (Gotsman,
//! Lefort, Chockler; DSN 2019).
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! * [`core`] ([`wbam_core`]) — the white-box atomic multicast protocol.
//! * [`skeen`] ([`wbam_skeen`]) — Skeen's protocol for singleton groups.
//! * [`baselines`] ([`wbam_baselines`]) — fault-tolerant Skeen and FastCast.
//! * [`consensus`] ([`wbam_consensus`]) — the multi-Paxos substrate.
//! * [`simnet`] ([`wbam_simnet`]) — the deterministic discrete-event simulator.
//! * [`runtime`] ([`wbam_runtime`]) — the threaded in-process runtime.
//! * [`harness`] ([`wbam_harness`]) — experiment harness (clusters, workloads,
//!   latency probes and sweeps).
//! * [`kvstore`] ([`wbam_kvstore`]) — the partitioned replicated KV store
//!   application.
//! * [`types`] ([`wbam_types`]) — shared identifiers, timestamps, ballots and
//!   configuration.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduced evaluation results. The runnable
//! examples live in `examples/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use wbam_baselines as baselines;
pub use wbam_consensus as consensus;
pub use wbam_core as core;
pub use wbam_harness as harness;
pub use wbam_kvstore as kvstore;
pub use wbam_runtime as runtime;
pub use wbam_simnet as simnet;
pub use wbam_skeen as skeen;
pub use wbam_types as types;
