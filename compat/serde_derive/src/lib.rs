//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-tree serde
//! shim.
//!
//! The macros are hand-rolled on top of `proc_macro` (no `syn`/`quote`,
//! which are unavailable in this hermetic workspace). They support exactly
//! the shapes the WBAM workspace uses:
//!
//! * structs with named fields, tuple structs (newtype included), unit
//!   structs;
//! * enums with unit, tuple and struct variants, encoded with serde's
//!   default external tagging;
//! * plain type parameters (`Action<M>`), which receive a
//!   `Serialize`/`Deserialize` bound on the generated impl.
//!
//! Field attributes (`#[serde(...)]`), lifetimes and `where` clauses are not
//! supported and fail with a compile error naming the limitation.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Body {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct GenericParam {
    name: String,
    bounds: String,
}

struct Item {
    name: String,
    generics: Vec<GenericParam>,
    body: Body,
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    let generics = parse_generics(&toks, &mut i);

    if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        panic!("derive shim: `where` clauses are not supported");
    }

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_struct_fields(&toks, &mut i)),
        "enum" => {
            let group = expect_group(&toks, &mut i, Delimiter::Brace, "enum body");
            Body::Enum(parse_variants(group))
        }
        other => panic!("derive shim: unsupported item kind `{other}`"),
    };

    Item {
        name,
        generics,
        body,
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                    if let Some(TokenTree::Ident(id)) = g.stream().into_iter().next() {
                        if id.to_string() == "serde" {
                            panic!("derive shim: #[serde(...)] attributes are not supported");
                        }
                    }
                }
                *i += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_generics(toks: &[TokenTree], i: &mut usize) -> Vec<GenericParam> {
    match toks.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut current: Vec<TokenTree> = Vec::new();
    loop {
        let tok = toks
            .get(*i)
            .unwrap_or_else(|| panic!("derive shim: unclosed generics"))
            .clone();
        *i += 1;
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(tok);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                if depth == 0 {
                    if !current.is_empty() {
                        params.push(parse_generic_param(&current));
                    }
                    return params;
                }
                depth -= 1;
                current.push(tok);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                params.push(parse_generic_param(&current));
                current.clear();
            }
            _ => current.push(tok),
        }
    }
}

fn parse_generic_param(toks: &[TokenTree]) -> GenericParam {
    if let Some(TokenTree::Punct(p)) = toks.first() {
        if p.as_char() == '\'' {
            panic!("derive shim: lifetime parameters are not supported");
        }
    }
    if let Some(TokenTree::Ident(id)) = toks.first() {
        if id.to_string() == "const" {
            panic!("derive shim: const generics are not supported");
        }
    }
    let name = match toks.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive shim: expected type parameter, found {other:?}"),
    };
    let bounds = match toks.get(1) {
        Some(TokenTree::Punct(p)) if p.as_char() == ':' => toks[2..]
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" "),
        _ => String::new(),
    };
    GenericParam { name, bounds }
}

fn expect_group<'a>(
    toks: &'a [TokenTree],
    i: &mut usize,
    delim: Delimiter,
    what: &str,
) -> &'a proc_macro::Group {
    match toks.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *i += 1;
            g
        }
        other => panic!("derive shim: expected {what}, found {other:?}"),
    }
}

fn parse_struct_fields(toks: &[TokenTree], i: &mut usize) -> Fields {
    match toks.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("derive shim: expected struct body, found {other:?}"),
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive shim: expected field name, found {other}"),
        };
        names.push(name);
        i += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut depth = 0usize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0usize;
    let mut saw_tokens_since_comma = false;
    for tok in &toks {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive shim: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '=' {
                panic!("derive shim: explicit enum discriminants are not supported");
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::value::Value";
const DE_ERROR: &str = "::serde::value::DeError";

fn impl_header(item: &Item, trait_bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let impl_params: Vec<String> = item
        .generics
        .iter()
        .map(|p| {
            if p.bounds.is_empty() {
                format!("{}: {trait_bound}", p.name)
            } else {
                format!("{}: {} + {trait_bound}", p.name, p.bounds)
            }
        })
        .collect();
    let ty_params: Vec<String> = item.generics.iter().map(|p| p.name.clone()).collect();
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", ty_params.join(", ")),
    )
}

fn ser_fields_named(prefix: &str, names: &[String]) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::serialize_value({prefix}{f}))"
            )
        })
        .collect();
    format!("{VALUE}::Map(::std::vec![{}])", entries.join(", "))
}

// A missing field deserialises from `Null` (so `Option` fields tolerate
// absence, as with real serde); required fields then fail with the field
// name attached for diagnosability.
fn de_fields_named(ty_path: &str, names: &[String], entries_var: &str) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_value(\
                 ::serde::value::map_get({entries_var}, \"{f}\")\
                 .unwrap_or(&{VALUE}::Null))\
                 .map_err(|e| {DE_ERROR}::new(\
                 ::std::format!(\"field `{f}` of {ty_path}: {{e}}\")))?"
            )
        })
        .collect();
    format!("{ty_path} {{ {} }}", fields.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = impl_header(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => format!("{VALUE}::Null"),
        Body::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::serialize_value(&self.0)".to_string()
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::serialize_value(&self.{idx})"))
                .collect();
            format!("{VALUE}::Seq(::std::vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Named(names)) => ser_fields_named("&self.", names),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => {VALUE}::Str(::std::string::String::from(\"{vname}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("{VALUE}::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vname}({}) => {VALUE}::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), {payload})]),",
                            binders.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let payload = ser_fields_named("", fnames);
                        format!(
                            "{name}::{vname} {{ {} }} => {VALUE}::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), {payload})]),",
                            fnames.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\
            fn serialize_value(&self) -> {VALUE} {{ {body} }}\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Body::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(v)?))"
        ),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = v.as_seq().ok_or_else(|| {DE_ERROR}::expected(\"tuple struct {name}\", v))?;\
                 if items.len() != {n} {{\
                     return ::std::result::Result::Err({DE_ERROR}::new(\
                         \"wrong number of fields for tuple struct {name}\"));\
                 }}\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Struct(Fields::Named(names)) => {
            let build = de_fields_named(name, names, "entries");
            format!(
                "let entries = v.as_map().ok_or_else(|| {DE_ERROR}::expected(\"struct {name}\", v))?;\
                 ::std::result::Result::Ok({build})"
            )
        }
        Body::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\
            fn deserialize_value(v: &{VALUE}) -> ::std::result::Result<Self, {DE_ERROR}> {{ {body} }}\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(vname, _)| format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| !matches!(f, Fields::Unit))
        .map(|(vname, fields)| match fields {
            Fields::Unit => unreachable!(),
            Fields::Tuple(1) => format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::deserialize_value(payload)?)),"
            ),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::deserialize_value(&items[{k}])?"))
                    .collect();
                format!(
                    "\"{vname}\" => {{\
                         let items = payload.as_seq().ok_or_else(|| \
                             {DE_ERROR}::expected(\"fields of {name}::{vname}\", payload))?;\
                         if items.len() != {n} {{\
                             return ::std::result::Result::Err({DE_ERROR}::new(\
                                 \"wrong number of fields for {name}::{vname}\"));\
                         }}\
                         ::std::result::Result::Ok({name}::{vname}({}))\
                     }}",
                    items.join(", ")
                )
            }
            Fields::Named(fnames) => {
                let build = de_fields_named(&format!("{name}::{vname}"), fnames, "inner");
                format!(
                    "\"{vname}\" => {{\
                         let inner = payload.as_map().ok_or_else(|| \
                             {DE_ERROR}::expected(\"fields of {name}::{vname}\", payload))?;\
                         ::std::result::Result::Ok({build})\
                     }}"
                )
            }
        })
        .collect();
    format!(
        "match v {{\
             {VALUE}::Str(tag) => match tag.as_str() {{\
                 {unit_arms}\
                 other => ::std::result::Result::Err({DE_ERROR}::new(::std::format!(\
                     \"unknown unit variant `{{other}}` of enum {name}\"))),\
             }},\
             {VALUE}::Map(entries) if entries.len() == 1 => {{\
                 let (tag, payload) = &entries[0];\
                 match tag.as_str() {{\
                     {tagged_arms}\
                     other => ::std::result::Result::Err({DE_ERROR}::new(::std::format!(\
                         \"unknown variant `{{other}}` of enum {name}\"))),\
                 }}\
             }}\
             other => ::std::result::Result::Err({DE_ERROR}::expected(\"enum {name}\", other)),\
         }}",
        unit_arms = unit_arms.join(" "),
        tagged_arms = tagged_arms.join(" "),
    )
}
