//! In-tree compatibility shim for the subset of the `criterion` API used by
//! the WBAM workspace's benches: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId::from_parameter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a warm-up phase, then `sample_size`
//! samples whose iteration count is sized to fill the configured measurement
//! time; mean and min/max ns/iter are printed per benchmark. No statistics
//! beyond that, no HTML reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (one per `criterion_group!`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut bencher, input);
        self.print_report(&id.id, bencher.report);
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut bencher);
        self.print_report(&id.id, bencher.report);
        self
    }

    fn print_report(&self, id: &str, report: Option<Report>) {
        match report {
            Some(r) => println!(
                "{}/{id}: mean {:.1} ns/iter (min {:.1}, max {:.1}, {} samples)",
                self.name, r.mean_ns, r.min_ns, r.max_ns, r.samples
            ),
            None => println!(
                "{}/{id}: no measurement (b.iter was never called)",
                self.name
            ),
        }
    }

    /// Ends the group.
    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
struct Report {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Measures the mean wall-clock time of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_up_start = Instant::now();
        let mut warm_up_iters = 0u64;
        while warm_up_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_up_iters += 1;
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_up_iters as f64;

        // Size each sample so all samples together fill measurement_time.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter) as u64).max(1);

        let mut sample_means = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            sample_means.push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        let mean = sample_means.iter().sum::<f64>() / sample_means.len() as f64;
        let min = sample_means.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sample_means.iter().copied().fold(0.0, f64::max);
        self.report = Some(Report {
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: sample_means.len(),
        });
    }
}

/// Bundles benchmark functions into one runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench_fn:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $bench_fn(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(15));
        group.bench_with_input(BenchmarkId::from_parameter("id"), &21u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
