//! In-tree compact binary data format for the serde compatibility shim.
//!
//! This is the deployed runtime's wire codec (see `WIRE.md` at the repo root
//! for the byte-for-byte specification). Like the `serde_json` shim it
//! round-trips the shim's self-describing [`serde::value::Value`] model
//! exactly, but in a length-delimited binary form built for small frames and
//! cheap encode/decode:
//!
//! * all lengths and unsigned integers are LEB128 varints; signed integers
//!   are zigzag-mapped first;
//! * unsigned integers `0..=127` are a single byte (the tag itself);
//! * map keys (struct field names, enum variant names) are interned per
//!   message: each distinct key is transmitted once, then referenced by a
//!   varint index, so batches of repeated structs carry near-zero name
//!   overhead;
//! * sequences whose elements are all unsigned integers `<= 255` — the shim's
//!   encoding of `Vec<u8>`/`Bytes` payloads — are packed as raw bytes.
//!
//! Entry points mirror `serde_json`: [`to_vec`] / [`from_slice`] for typed
//! values, plus [`value_to_vec`] / [`value_from_slice`] for raw `Value` trees
//! (used by the property tests).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;

use serde::de::DeserializeOwned;
use serde::value::Value;
use serde::Serialize;

/// Type tag for [`Value::Null`].
const TAG_NULL: u8 = 0x00;
/// Type tag for [`Value::Bool`]`(false)`.
const TAG_FALSE: u8 = 0x01;
/// Type tag for [`Value::Bool`]`(true)`.
const TAG_TRUE: u8 = 0x02;
/// Type tag for [`Value::U64`]; payload is a LEB128 varint.
const TAG_U64: u8 = 0x03;
/// Type tag for [`Value::I64`]; payload is a zigzag LEB128 varint.
const TAG_I64: u8 = 0x04;
/// Type tag for [`Value::F64`]; payload is the 8-byte little-endian IEEE-754
/// bit pattern.
const TAG_F64: u8 = 0x05;
/// Type tag for [`Value::Str`]; payload is a varint byte length + UTF-8.
const TAG_STR: u8 = 0x06;
/// Type tag for [`Value::Seq`]; payload is a varint count + elements.
const TAG_SEQ: u8 = 0x07;
/// Type tag for [`Value::Map`]; payload is a varint count + interned-key
/// entries.
const TAG_MAP: u8 = 0x08;
/// Type tag for a packed byte sequence: a [`Value::Seq`] whose elements are
/// all `U64 <= 255`, stored as a varint count + raw bytes.
const TAG_BYTES: u8 = 0x09;
/// Tags `0x80..=0xFF` encode `Value::U64(n)` for `n <= 127` inline as
/// `0x80 | n`.
const TAG_SMALL_U64: u8 = 0x80;

/// Maximum nesting depth accepted by the decoder, guarding the stack against
/// adversarial input from the network.
const MAX_DEPTH: usize = 128;

/// An error produced while encoding to or decoding from the binary format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A specialised `Result` for binary conversions.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to its binary encoding.
///
/// # Errors
///
/// Never fails for values producible by the shim's `Serialize` impls; the
/// `Result` mirrors the `serde_json` entry points so call sites are
/// format-agnostic.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(value_to_vec(&value.serialize_value()))
}

/// Deserialises a value from its binary encoding.
///
/// # Errors
///
/// Returns an error on malformed input, trailing bytes, or a mismatch between
/// the decoded shape and the target type.
pub fn from_slice<T: DeserializeOwned>(input: &[u8]) -> Result<T> {
    let value = value_from_slice(input)?;
    T::deserialize_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Encodes a raw [`Value`] tree.
pub fn value_to_vec(value: &Value) -> Vec<u8> {
    let mut enc = Encoder {
        out: Vec::with_capacity(64),
        keys: HashMap::new(),
    };
    enc.write_value(value);
    enc.out
}

/// Decodes a raw [`Value`] tree, rejecting trailing bytes.
///
/// # Errors
///
/// Returns an error on truncated or malformed input, on nesting deeper than
/// an internal limit, or if bytes remain after the value.
pub fn value_from_slice(input: &[u8]) -> Result<Value> {
    let mut dec = Decoder {
        bytes: input,
        pos: 0,
        keys: Vec::new(),
    };
    let value = dec.read_value(0)?;
    if dec.pos != dec.bytes.len() {
        return Err(Error::new(format!(
            "trailing bytes after value: {} consumed, {} present",
            dec.pos,
            dec.bytes.len()
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

struct Encoder {
    out: Vec<u8>,
    /// Per-message key dictionary: key string -> 1-based index.
    keys: HashMap<String, u64>,
}

impl Encoder {
    fn write_varint(&mut self, mut n: u64) {
        loop {
            let byte = (n & 0x7F) as u8;
            n >>= 7;
            if n == 0 {
                self.out.push(byte);
                return;
            }
            self.out.push(byte | 0x80);
        }
    }

    fn write_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.out.push(TAG_NULL),
            Value::Bool(false) => self.out.push(TAG_FALSE),
            Value::Bool(true) => self.out.push(TAG_TRUE),
            Value::U64(n) if *n <= 0x7F => self.out.push(TAG_SMALL_U64 | *n as u8),
            Value::U64(n) => {
                self.out.push(TAG_U64);
                self.write_varint(*n);
            }
            Value::I64(n) => {
                self.out.push(TAG_I64);
                self.write_varint(zigzag(*n));
            }
            Value::F64(x) => {
                self.out.push(TAG_F64);
                self.out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                self.out.push(TAG_STR);
                self.write_varint(s.len() as u64);
                self.out.extend_from_slice(s.as_bytes());
            }
            Value::Seq(items) => {
                if !items.is_empty()
                    && items
                        .iter()
                        .all(|i| matches!(i, Value::U64(n) if *n <= 0xFF))
                {
                    self.out.push(TAG_BYTES);
                    self.write_varint(items.len() as u64);
                    for item in items {
                        match item {
                            Value::U64(n) => self.out.push(*n as u8),
                            _ => unreachable!("checked above"),
                        }
                    }
                } else {
                    self.out.push(TAG_SEQ);
                    self.write_varint(items.len() as u64);
                    for item in items {
                        self.write_value(item);
                    }
                }
            }
            Value::Map(entries) => {
                self.out.push(TAG_MAP);
                self.write_varint(entries.len() as u64);
                for (key, value) in entries {
                    match self.keys.get(key) {
                        Some(&idx) => self.write_varint(idx),
                        None => {
                            let idx = self.keys.len() as u64 + 1;
                            self.keys.insert(key.clone(), idx);
                            self.write_varint(0);
                            self.write_varint(key.len() as u64);
                            self.out.extend_from_slice(key.as_bytes());
                        }
                    }
                    self.write_value(value);
                }
            }
        }
    }
}

/// Maps a signed integer to an unsigned one with small absolute values small:
/// `0, -1, 1, -2, ...` become `0, 1, 2, 3, ...`.
fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Per-message key dictionary, in first-transmission order.
    keys: Vec<String>,
}

impl<'a> Decoder<'a> {
    fn bump(&mut self) -> Result<u8> {
        let b = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of binary input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn read_varint(&mut self) -> Result<u64> {
        let mut n: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.bump()?;
            if shift == 63 && byte > 1 {
                return Err(Error::new("varint overflows u64"));
            }
            n |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(n);
            }
            shift += 7;
            if shift > 63 {
                return Err(Error::new("varint longer than 10 bytes"));
            }
        }
    }

    /// Reads a length that must not exceed the remaining input (each counted
    /// item needs at least one byte), so counts can't force huge allocations.
    fn read_len(&mut self, what: &str) -> Result<usize> {
        let n = self.read_varint()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if n > remaining {
            return Err(Error::new(format!(
                "{what} length {n} exceeds remaining input ({remaining} bytes)"
            )));
        }
        Ok(n as usize)
    }

    fn read_exact(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| Error::new("unexpected end of binary input"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn read_string(&mut self, what: &str) -> Result<String> {
        let len = self.read_len(what)?;
        let bytes = self.read_exact(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| Error::new(format!("invalid UTF-8 in {what}: {e}")))
    }

    fn read_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("value nesting exceeds maximum depth"));
        }
        let tag = self.bump()?;
        if tag & TAG_SMALL_U64 != 0 {
            return Ok(Value::U64(u64::from(tag & 0x7F)));
        }
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_U64 => self.read_varint().map(Value::U64),
            TAG_I64 => self.read_varint().map(|n| Value::I64(unzigzag(n))),
            TAG_F64 => {
                let bytes = self.read_exact(8)?;
                let bits = u64::from_le_bytes(bytes.try_into().expect("8-byte slice"));
                Ok(Value::F64(f64::from_bits(bits)))
            }
            TAG_STR => self.read_string("string").map(Value::Str),
            TAG_SEQ => {
                let count = self.read_len("sequence")?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.read_value(depth + 1)?);
                }
                Ok(Value::Seq(items))
            }
            TAG_BYTES => {
                let count = self.read_len("byte sequence")?;
                let bytes = self.read_exact(count)?;
                Ok(Value::Seq(
                    bytes.iter().map(|&b| Value::U64(u64::from(b))).collect(),
                ))
            }
            TAG_MAP => {
                let count = self.read_len("map")?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let key_ref = self.read_varint()?;
                    let key = if key_ref == 0 {
                        let key = self.read_string("map key")?;
                        self.keys.push(key.clone());
                        key
                    } else {
                        self.keys
                            .get(key_ref as usize - 1)
                            .cloned()
                            .ok_or_else(|| {
                                Error::new(format!(
                                    "map key reference {key_ref} out of range ({} interned)",
                                    self.keys.len()
                                ))
                            })?
                    };
                    entries.push((key, self.read_value(depth + 1)?));
                }
                Ok(Value::Map(entries))
            }
            other => Err(Error::new(format!(
                "unknown type tag 0x{other:02x} at byte {}",
                self.pos - 1
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_value(v: &Value) {
        let bytes = value_to_vec(v);
        let back = value_from_slice(&bytes).expect("decode");
        assert_eq!(&back, v, "round-trip mismatch for encoding {bytes:?}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::U64(0),
            Value::U64(127),
            Value::U64(128),
            Value::U64(u64::MAX),
            Value::I64(0),
            Value::I64(-1),
            Value::I64(i64::MIN),
            Value::I64(i64::MAX),
            Value::F64(0.1),
            Value::F64(-1.5e300),
            Value::Str(String::new()),
            Value::Str("unicode ✓ épée 😀".into()),
        ] {
            round_trip_value(&v);
        }
    }

    #[test]
    fn small_ints_are_one_byte() {
        assert_eq!(value_to_vec(&Value::U64(0)), vec![0x80]);
        assert_eq!(value_to_vec(&Value::U64(127)), vec![0xFF]);
        assert_eq!(value_to_vec(&Value::U64(128)), vec![TAG_U64, 0x80, 0x01]);
    }

    #[test]
    fn byte_seqs_are_packed() {
        let v = Value::Seq((0..=255u64).map(Value::U64).collect());
        let bytes = value_to_vec(&v);
        assert_eq!(bytes[0], TAG_BYTES);
        // tag + 2-byte varint count + 256 raw bytes.
        assert_eq!(bytes.len(), 1 + 2 + 256);
        round_trip_value(&v);
        // A 256-valued element forces the general Seq encoding.
        let v = Value::Seq(vec![Value::U64(256)]);
        assert_eq!(value_to_vec(&v)[0], TAG_SEQ);
        round_trip_value(&v);
        // The empty Seq stays a Seq.
        let v = Value::Seq(vec![]);
        assert_eq!(value_to_vec(&v), vec![TAG_SEQ, 0]);
        round_trip_value(&v);
    }

    #[test]
    fn repeated_map_keys_are_interned() {
        let entry = Value::Map(vec![
            ("alpha".into(), Value::U64(1)),
            ("beta".into(), Value::U64(2)),
        ]);
        let seq = Value::Seq(vec![entry.clone(); 10]);
        let bytes = value_to_vec(&seq);
        // Each key's bytes appear exactly once in the encoding.
        let count = |needle: &[u8]| bytes.windows(needle.len()).filter(|w| *w == needle).count();
        assert_eq!(count(b"alpha"), 1);
        assert_eq!(count(b"beta"), 1);
        round_trip_value(&seq);
    }

    #[test]
    fn nested_containers_round_trip() {
        let v = Value::Map(vec![
            (
                "seq".into(),
                Value::Seq(vec![Value::Null, Value::Bool(true), Value::I64(-7)]),
            ),
            (
                "map".into(),
                Value::Map(vec![("seq".into(), Value::Str("shared key".into()))]),
            ),
        ]);
        round_trip_value(&v);
    }

    #[test]
    fn typed_round_trip_matches_json_shim() {
        let v = vec![1u64, 2, 300];
        let bytes = to_vec(&v).unwrap();
        assert_eq!(from_slice::<Vec<u64>>(&bytes).unwrap(), v);
        let o: Option<String> = Some("x".into());
        let bytes = to_vec(&o).unwrap();
        assert_eq!(from_slice::<Option<String>>(&bytes).unwrap(), o);
    }

    #[test]
    fn malformed_input_is_rejected() {
        // Truncated varint.
        assert!(value_from_slice(&[TAG_U64, 0x80]).is_err());
        // Truncated string.
        assert!(value_from_slice(&[TAG_STR, 5, b'a']).is_err());
        // Length exceeding input.
        assert!(value_from_slice(&[TAG_SEQ, 0xFF, 0x7F]).is_err());
        // Unknown tag.
        assert!(value_from_slice(&[0x0A]).is_err());
        // Bad key reference.
        assert!(value_from_slice(&[TAG_MAP, 1, 2, TAG_NULL]).is_err());
        // Trailing bytes.
        assert!(value_from_slice(&[TAG_NULL, TAG_NULL]).is_err());
        // Empty input.
        assert!(value_from_slice(&[]).is_err());
        // Varint overflowing u64 (11 continuation bytes).
        let overlong = [0xFF; 11];
        let mut buf = vec![TAG_U64];
        buf.extend_from_slice(&overlong);
        assert!(value_from_slice(&buf).is_err());
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let mut v = Value::Null;
        for _ in 0..200 {
            v = Value::Seq(vec![v]);
        }
        let bytes = value_to_vec(&v);
        assert!(value_from_slice(&bytes).is_err());
    }

    #[test]
    fn zigzag_is_an_involution_on_edges() {
        for n in [0i64, -1, 1, i64::MIN, i64::MAX, -1234567890123] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
    }
}
