//! In-tree compatibility shim for the subset of the `rand` 0.8 API used by
//! the WBAM workspace: a deterministic [`rngs::StdRng`] seedable via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait with
//! `gen_range` / `gen_bool`, and [`seq::SliceRandom`] with `shuffle` /
//! `choose`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms, which is exactly what the simulator and the property
//! tests rely on. It is **not** cryptographically secure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps a random word to `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    // 53 random mantissa bits, the standard conversion.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly — the shim's analogue of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    // `$ut` is `$t`'s unsigned counterpart: the span must be computed in it
    // so that widening to u64 zero-extends instead of sign-extending.
    ($(($t:ty, $ut:ty)),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $ut as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!((i8, u8), (i16, u16), (i32, u32), (i64, u64), (isize, usize));

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, the recommended seeding
            // procedure for the xoshiro family.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

/// Random sequence operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: in-place shuffling and random element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.0..=2.5);
            assert!((0.0..=2.5).contains(&f));
            let s = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&s));
            // Narrow signed types: the span must not sign-extend (would
            // otherwise produce values far outside the range).
            let b = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&b));
            let bi = rng.gen_range(-100i8..=100);
            assert!((-100..=100).contains(&bi));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
