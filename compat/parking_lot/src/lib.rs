//! In-tree compatibility shim for the subset of the `parking_lot` API used
//! by the WBAM workspace: a [`Mutex`] whose `lock` returns the guard
//! directly (no poisoning `Result`).
//!
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered transparently,
//! matching parking_lot's "no poisoning" semantics closely enough for the
//! runtime's delivery log.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::{MutexGuard as StdMutexGuard, PoisonError};

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
