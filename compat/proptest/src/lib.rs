//! In-tree compatibility shim for the subset of the `proptest` API used by
//! the WBAM workspace: the [`proptest!`] test macro, [`prop_oneof!`],
//! `prop_assert!` / `prop_assert_eq!`, [`strategy::Strategy`] with
//! `prop_map`, [`strategy::Just`], integer-range strategies, tuple
//! strategies, [`collection::vec`] and [`bool::ANY`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each property test derives a fixed RNG seed from its own name, so
//! runs are deterministic and failures reproduce exactly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;
pub mod test_runner;

/// Strategies over `bool`.
pub mod bool {
    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy for arbitrary booleans (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> bool {
            use rand::Rng;
            rng.gen_bool(0.5)
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;

    /// Strategy producing vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports for writing property tests.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Derives the deterministic RNG for a named property test (FNV-1a of the
/// test name). Used by the [`proptest!`] expansion; not public API.
#[doc(hidden)]
pub fn __rng_for(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running the body for `cases` sampled
/// inputs (default 64, override with `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::__rng_for(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1_000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_maps_compose(x in arb_even(), y in 1u32..10, b in prop::bool::ANY) {
            prop_assert!(x.is_multiple_of(2));
            prop_assert!((1..10).contains(&y));
            let flag: u8 = if b { 1 } else { 0 };
            prop_assert!(flag <= 1);
        }

        #[test]
        fn oneof_and_vec(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (0i64..50, 0i64..50)) {
            prop_assert!(pair.0 + pair.1 < 100);
        }
    }
}
