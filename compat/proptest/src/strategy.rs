//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// The shim's strategies are plain samplers — no shrinking. `sample` takes
/// the concrete [`StdRng`] so the trait stays object-safe for
/// [`BoxedStrategy`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.inner.sample(rng)
    }
}

/// Uniform choice among several boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
