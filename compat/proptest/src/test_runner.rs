//! Configuration for property-test execution.

/// How a [`crate::proptest!`] block runs its cases.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
