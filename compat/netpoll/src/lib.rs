//! Minimal readiness-notification shim over `poll(2)` plus a self-pipe wake
//! fd and POSIX signal helpers, declared directly against the C library — no
//! `libc`/`mio`/`signal-hook` crates, in keeping with the workspace's
//! hermetic `compat/` policy (see README.md).
//!
//! The poll half exists for exactly one consumer: the single poller thread of
//! the TCP transport in `wbam-runtime`. The poller multiplexes its listener,
//! every peer socket and a [`WakePipe`] through [`poll`], so inbound bytes
//! wake it the instant the kernel marks a socket readable and the node thread
//! wakes it explicitly (one byte down the pipe) when it queues outbound
//! frames — no timed parking on either path.
//!
//! The signal half ([`send_signal`], [`Signal`], [`termination_flag`]) exists
//! for the deployed fault-injection harness in `wbam-harness`: the `net_chaos`
//! driver pauses and resumes live `wbamd` processes with SIGSTOP/SIGCONT, and
//! `wbamd` itself installs a SIGTERM flag so an orchestrator's terminate
//! request drains the delivery log instead of killing the process mid-write.
//! Both consumers keep their `#![forbid(unsafe_code)]` because the raw
//! `kill(2)`/`signal(2)` calls live here.
//!
//! Everything here is `cfg(unix)`: `poll(2)`, `pipe(2)` and `fcntl(2)` are
//! POSIX, and the handful of constants baked in below are identical across
//! the Unixes this workspace builds on (Linux values, with the Darwin/BSD
//! `O_NONBLOCK` difference handled explicitly). On non-Unix targets the
//! crate compiles to nothing and the transport falls back to its portable
//! spin-then-park loop.
//!
//! The API is safe: all `unsafe` is contained in this crate, behind
//! bounds-checked wrappers, so consumers keep their `#![forbid(unsafe_code)]`.
//!
//! # Example
//!
//! ```
//! # #[cfg(unix)] {
//! use std::time::Duration;
//! use netpoll::{poll, PollFd, WakePipe, POLLIN};
//!
//! let wake = WakePipe::new().unwrap();
//! // Nothing pending: poll times out.
//! let mut fds = [PollFd::new(wake.read_fd(), POLLIN)];
//! assert_eq!(poll(&mut fds, Some(Duration::from_millis(1))).unwrap(), 0);
//! // A wake from (any) thread makes the pipe readable instantly.
//! wake.wake();
//! let n = poll(&mut fds, None).unwrap();
//! assert_eq!(n, 1);
//! assert!(fds[0].readable());
//! wake.drain();
//! # }
//! ```

#![warn(missing_docs)]

#[cfg(unix)]
mod unix {
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// Readable data available (request and result flag).
    pub const POLLIN: i16 = 0x001;
    /// Writing is possible without blocking (request and result flag).
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (result only; always reported, never requested).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (result only).
    pub const POLLHUP: i16 = 0x010;
    /// The fd is not open (result only — a bookkeeping bug in the caller).
    pub const POLLNVAL: i16 = 0x020;

    // `nfds_t` is `unsigned long` on Linux and `unsigned int` on the BSDs
    // and Darwin.
    #[cfg(target_os = "linux")]
    type NfdsT = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::ffi::c_uint;

    const F_SETFD: i32 = 2;
    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    const FD_CLOEXEC: i32 = 1;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: i32 = 0x800;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: i32 = 0x4;

    // Wrapped in a module so the raw declarations don't collide with the
    // safe wrappers of the same names.
    mod c {
        extern "C" {
            pub fn poll(fds: *mut super::PollFd, nfds: super::NfdsT, timeout: i32) -> i32;
            pub fn pipe(fds: *mut i32) -> i32;
            pub fn fcntl(fd: i32, cmd: i32, ...) -> i32;
            pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
            pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
            pub fn close(fd: i32) -> i32;
            pub fn kill(pid: i32, sig: i32) -> i32;
            pub fn signal(signum: i32, handler: usize) -> usize;
        }
    }

    /// One entry of a [`poll`](crate::poll) set; layout-compatible with the C
    /// library's `struct pollfd`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        fd: RawFd,
        events: i16,
        revents: i16,
    }

    impl PollFd {
        /// An entry watching `fd` for `events` (a bitwise-or of [`POLLIN`]
        /// and [`POLLOUT`]; error conditions are always reported and need
        /// not be requested — `events = 0` watches for errors alone).
        pub fn new(fd: RawFd, events: i16) -> Self {
            PollFd {
                fd,
                events,
                revents: 0,
            }
        }

        /// The watched fd.
        pub fn fd(&self) -> RawFd {
            self.fd
        }

        /// Readable — or in an error/hangup state a read would surface.
        pub fn readable(&self) -> bool {
            self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
        }

        /// Writable — or in an error/hangup state a write would surface.
        pub fn writable(&self) -> bool {
            self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
        }

        /// In an error, hangup or invalid-fd state.
        pub fn has_error(&self) -> bool {
            self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
        }
    }

    /// Converts a timeout to `poll(2)` milliseconds: `None` blocks
    /// indefinitely; sub-millisecond non-zero waits round *up* so a caller
    /// asking for "a little while" never gets a busy-spinning zero.
    fn timeout_ms(timeout: Option<Duration>) -> i32 {
        match timeout {
            None => -1,
            Some(d) => {
                if d.is_zero() {
                    0
                } else {
                    d.as_millis().clamp(1, i32::MAX as u128) as i32
                }
            }
        }
    }

    /// Blocks until at least one entry is ready or the timeout expires.
    /// Returns the number of entries with non-zero `revents` (0 on timeout).
    /// A signal interrupting the wait reports as a timeout (`Ok(0)`) — the
    /// caller's loop re-evaluates and re-polls.
    ///
    /// # Errors
    ///
    /// Any `poll(2)` failure other than `EINTR`, as [`io::Error`].
    pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `repr(C)`-compatible entries and `len()` is its true length.
        let rc = unsafe { c::poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms(timeout)) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            Ok(0)
        } else {
            Err(err)
        }
    }

    /// A self-pipe: any thread calls [`wake`](Self::wake) to make the read
    /// end readable, unparking a poller blocked in [`poll`]. Both ends are
    /// nonblocking — a wake while the pipe is full is a no-op, which is
    /// exactly right: the poller is already guaranteed to wake and drain.
    #[derive(Debug)]
    pub struct WakePipe {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    // SAFETY: the fields are plain fds; `wake`/`drain` issue independent
    // syscalls that the kernel serialises (single-byte pipe writes are
    // atomic), and the fds are only closed in `Drop`, which takes `&mut`.
    unsafe impl Send for WakePipe {}
    unsafe impl Sync for WakePipe {}

    impl WakePipe {
        /// Creates the pipe, with both ends nonblocking and close-on-exec.
        ///
        /// # Errors
        ///
        /// `pipe(2)`/`fcntl(2)` failures, as [`io::Error`].
        pub fn new() -> io::Result<WakePipe> {
            let mut fds = [0i32; 2];
            // SAFETY: `fds` is a valid 2-element array, as pipe(2) requires.
            if unsafe { c::pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            let pipe = WakePipe {
                read_fd: fds[0],
                write_fd: fds[1],
            };
            for fd in fds {
                // SAFETY: `fd` is a freshly created, owned pipe fd; F_GETFL
                // takes no third argument, F_SETFL/F_SETFD take an int.
                let rc = unsafe {
                    let flags = c::fcntl(fd, F_GETFL);
                    if flags < 0 || c::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
                        -1
                    } else {
                        c::fcntl(fd, F_SETFD, FD_CLOEXEC)
                    }
                };
                if rc < 0 {
                    return Err(io::Error::last_os_error()); // Drop closes both ends
                }
            }
            Ok(pipe)
        }

        /// The fd to include (with [`POLLIN`]) in a poll set.
        pub fn read_fd(&self) -> RawFd {
            self.read_fd
        }

        /// Makes the read end readable. Never blocks: a full pipe means the
        /// poller already has a pending wake, so the dropped byte is free.
        pub fn wake(&self) {
            // SAFETY: `write_fd` is owned and open for the lifetime of
            // `&self`; the 1-byte buffer is valid.
            unsafe {
                let _ = c::write(self.write_fd, [1u8].as_ptr(), 1);
            }
        }

        /// Empties the read end, consuming every pending wake. Call once per
        /// poller iteration before draining the work the wakes announced.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: `read_fd` is owned and open; the buffer is valid
                // for its full length.
                let n = unsafe { c::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    return; // empty (EAGAIN), EOF or a transient error
                }
            }
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            // SAFETY: both fds are owned by `self` and closed exactly once.
            unsafe {
                let _ = c::close(self.read_fd);
                let _ = c::close(self.write_fd);
            }
        }
    }

    /// The signals the fault-injection harness sends to live processes.
    ///
    /// Numbers are the POSIX/Linux values; `Stop`/`Cont` differ between
    /// Linux and the BSDs/Darwin, handled per-target below.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Signal {
        /// Graceful termination request (`SIGTERM`) — catchable; `wbamd`
        /// drains its delivery log on it.
        Term,
        /// Immediate kill (`SIGKILL`) — uncatchable crash injection.
        Kill,
        /// Suspend the process (`SIGSTOP`) — uncatchable pause injection.
        Stop,
        /// Resume a stopped process (`SIGCONT`).
        Cont,
    }

    impl Signal {
        fn number(self) -> i32 {
            match self {
                Signal::Term => 15,
                Signal::Kill => 9,
                #[cfg(target_os = "linux")]
                Signal::Stop => 19,
                #[cfg(not(target_os = "linux"))]
                Signal::Stop => 17,
                #[cfg(target_os = "linux")]
                Signal::Cont => 18,
                #[cfg(not(target_os = "linux"))]
                Signal::Cont => 19,
            }
        }
    }

    /// Sends `sig` to the process with id `pid` via `kill(2)`.
    ///
    /// Takes the `u32` process id that `std::process::Child::id` returns and
    /// rejects ids that do not name a single positive process (0 and
    /// anything that would go negative as a C `pid_t` address process
    /// *groups*, which the harness must never signal by accident).
    ///
    /// # Errors
    ///
    /// `kill(2)` failures — most usefully `ESRCH` ([`io::ErrorKind::NotFound`]
    /// on Linux maps to "No such process") when the target already exited —
    /// or [`io::ErrorKind::InvalidInput`] for a group-addressing pid.
    pub fn send_signal(pid: u32, sig: Signal) -> io::Result<()> {
        let pid = i32::try_from(pid)
            .ok()
            .filter(|p| *p > 0)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "pid must be positive"))?;
        // SAFETY: plain syscall on validated scalar arguments.
        if unsafe { c::kill(pid, sig.number()) } == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Set to `true` by the handler [`termination_flag`] installs.
    static TERM_FLAG: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

    /// The `SIGTERM` handler: only an atomic store, which is async-signal-safe.
    extern "C" fn term_handler(_signum: i32) {
        TERM_FLAG.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Installs a `SIGTERM` handler that records the signal in an atomic
    /// flag, and returns the flag. Idempotent — repeat calls reinstall the
    /// same handler and return the same flag. The caller polls the flag from
    /// its main loop and shuts down cleanly; nothing else happens at signal
    /// time.
    ///
    /// # Errors
    ///
    /// `signal(2)` failure (`SIG_ERR`), as [`io::Error`].
    pub fn termination_flag() -> io::Result<&'static std::sync::atomic::AtomicBool> {
        const SIG_ERR: usize = usize::MAX;
        // SAFETY: installing a handler that performs only an atomic store;
        // `signal(2)` itself has no memory-safety preconditions.
        let handler = term_handler as extern "C" fn(i32) as *const () as usize;
        let prev = unsafe { c::signal(Signal::Term.number(), handler) };
        if prev == SIG_ERR {
            Err(io::Error::last_os_error())
        } else {
            Ok(&TERM_FLAG)
        }
    }
}

#[cfg(unix)]
pub use unix::{
    poll, send_signal, termination_flag, PollFd, Signal, WakePipe, POLLERR, POLLHUP, POLLIN,
    POLLNVAL, POLLOUT,
};

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::time::{Duration, Instant};

    #[test]
    fn poll_times_out_when_nothing_is_ready() {
        let wake = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(wake.read_fd(), POLLIN)];
        let begin = Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
        assert!(begin.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn wake_makes_the_pipe_readable_and_drain_clears_it() {
        let wake = WakePipe::new().unwrap();
        wake.wake();
        wake.wake(); // coalesced: any number of wakes is one readable state
        let mut fds = [PollFd::new(wake.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(fds[0].readable());
        wake.drain();
        let mut fds = [PollFd::new(wake.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(1))).unwrap(), 0);
    }

    #[test]
    fn wake_from_another_thread_unparks_a_blocked_poll() {
        let wake = std::sync::Arc::new(WakePipe::new().unwrap());
        let waker = std::sync::Arc::clone(&wake);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut fds = [PollFd::new(wake.read_fd(), POLLIN)];
        let begin = Instant::now();
        assert_eq!(poll(&mut fds, Some(Duration::from_secs(10))).unwrap(), 1);
        // Unparked by the wake, not the 10 s timeout.
        assert!(begin.elapsed() < Duration::from_secs(5));
        t.join().unwrap();
    }

    #[test]
    fn a_full_pipe_never_blocks_the_waker() {
        let wake = WakePipe::new().unwrap();
        // Far beyond any pipe's capacity; every call must return promptly.
        for _ in 0..200_000 {
            wake.wake();
        }
        wake.drain();
        let mut fds = [PollFd::new(wake.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(1))).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_reports_through_poll() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        use std::os::unix::io::AsRawFd;

        // Nothing to read yet.
        let mut fds = [PollFd::new(served.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(1))).unwrap(), 0);

        // Bytes in flight flip POLLIN...
        client.write_all(b"ping").unwrap();
        let mut fds = [PollFd::new(served.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(fds[0].readable());
        let mut buf = [0u8; 4];
        served.read_exact(&mut buf).unwrap();

        // ...and an idle socket is immediately writable.
        let mut fds = [PollFd::new(served.as_raw_fd(), POLLOUT)];
        assert_eq!(poll(&mut fds, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(fds[0].writable());

        // A hung-up peer reports even with no requested events.
        drop(client);
        let mut fds = [PollFd::new(served.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn send_signal_rejects_group_addressing_pids() {
        assert_eq!(
            send_signal(0, Signal::Kill).unwrap_err().kind(),
            std::io::ErrorKind::InvalidInput
        );
        assert_eq!(
            send_signal(u32::MAX, Signal::Kill).unwrap_err().kind(),
            std::io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn stop_cont_kill_drive_a_real_child_process() {
        // `sleep 30` as a guinea pig: STOP must not terminate it, CONT must
        // leave it running, KILL must end it with the SIGKILL status.
        let mut child = std::process::Command::new("sleep")
            .arg("30")
            .spawn()
            .unwrap();
        let pid = child.id();
        send_signal(pid, Signal::Stop).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(child.try_wait().unwrap().is_none(), "STOP must not reap");
        send_signal(pid, Signal::Cont).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            child.try_wait().unwrap().is_none(),
            "CONT resumes, not exits"
        );
        send_signal(pid, Signal::Kill).unwrap();
        let status = child.wait().unwrap();
        assert!(!status.success());
        use std::os::unix::process::ExitStatusExt;
        assert_eq!(status.signal(), Some(9));
    }

    #[test]
    fn termination_flag_is_set_by_a_real_sigterm() {
        let flag = termination_flag().unwrap();
        assert!(!flag.load(std::sync::atomic::Ordering::Relaxed));
        send_signal(std::process::id(), Signal::Term).unwrap();
        let begin = Instant::now();
        while !flag.load(std::sync::atomic::Ordering::Relaxed) {
            assert!(begin.elapsed() < Duration::from_secs(5), "flag never set");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
