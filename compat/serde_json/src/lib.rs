//! In-tree JSON data format for the serde compatibility shim.
//!
//! Provides the four entry points the WBAM workspace uses —
//! [`to_string`], [`to_vec`], [`from_str`], [`from_slice`] — implemented as a
//! plain recursive-descent JSON parser and printer over the shim's
//! [`serde::value::Value`] model. Full round-trip fidelity is guaranteed for
//! everything the shim can represent: `u64`/`i64` exactly, `f64` via Rust's
//! shortest round-trip formatting, strings with standard JSON escapes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

use serde::de::DeserializeOwned;
use serde::value::Value;
use serde::Serialize;

/// An error produced while serialising to or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A specialised `Result` for JSON conversions.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to a JSON string.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float, which JSON
/// cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value())?;
    Ok(out)
}

/// Serialises a value to a JSON byte vector.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialises a value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing input, or a mismatch between
/// the JSON shape and the target type.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::deserialize_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Deserialises a value from JSON bytes.
///
/// # Errors
///
/// Same conditions as [`from_str`], plus invalid UTF-8.
pub fn from_slice<T: DeserializeOwned>(input: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(input).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            // `{:?}` is Rust's shortest round-trip formatting; its output
            // (e.g. `1.0`, `2.5e-9`) is valid JSON for finite values.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid JSON at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of JSON input")),
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require a following \uXXXX low
                            // surrogate and combine the pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::new("unpaired surrogate in string"));
                            }
                            let cp = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(cp)
                        } else {
                            char::from_u32(first)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid unicode escape"))?);
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut n = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            n = n * 16 + digit;
        }
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("2.5e-3").unwrap(), 2.5e-3);
        let x: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(x, 0.1);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"slash\\tab\tunicode✓\u{1}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            "é😀"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u32>("{").is_err());
    }
}
