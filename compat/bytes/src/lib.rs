//! In-tree compatibility shim for the subset of the `bytes` API used by the
//! WBAM workspace: cheaply cloneable immutable [`Bytes`], a growable
//! [`BytesMut`] with a consuming front cursor, and the [`Buf`] / [`BufMut`]
//! trait methods the wire codec calls.
//!
//! [`Bytes`] is an `Arc<[u8]>` (clone = refcount bump); [`BytesMut`] is a
//! plain `Vec<u8>`, so `advance`/`split_to` are O(n) moves — fine for the
//! workspace's small frames, not a drop-in for high-throughput IO.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

/// A cheaply cloneable immutable byte buffer (reference counted).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static byte string.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Creates a buffer by copying a slice.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Serialize for Bytes {
    fn serialize_value(&self) -> Value {
        Value::Seq(
            self.data
                .iter()
                .map(|&b| Value::U64(u64::from(b)))
                .collect(),
        )
    }
}

impl Deserialize for Bytes {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Vec::<u8>::deserialize_value(v).map(Bytes::from)
    }
}

/// A growable byte buffer that also supports consuming bytes from the front.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice to the end of the buffer.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Removes the first `at` bytes and returns them as a new buffer.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let head = self.data.drain(..at).collect();
        BytesMut { data: head }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec() }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", Bytes::copy_from_slice(&self.data))
    }
}

/// Read-side buffer operations (the subset the wire codec uses).
pub trait Buf {
    /// Discards the first `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

impl Buf for BytesMut {
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance out of bounds");
        self.data.drain(..cnt);
    }
}

/// Write-side buffer operations (the subset the wire codec uses).
pub trait BufMut {
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, n: u32);
    /// Appends a slice.
    fn put_slice(&mut self, bytes: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32(&mut self, n: u32) {
        self.data.extend_from_slice(&n.to_be_bytes());
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_and_clone_are_cheap_views() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn bytes_mut_cursor_operations() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xDEADBEEF);
        buf.put_slice(b"abc");
        assert_eq!(buf.len(), 7);
        assert_eq!(&buf[..4], &0xDEADBEEFu32.to_be_bytes());
        buf.advance(4);
        let head = buf.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&buf.freeze()[..], b"c");
    }
}
