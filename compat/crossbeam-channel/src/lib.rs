//! In-tree compatibility shim for the subset of the `crossbeam-channel` API
//! used by the WBAM workspace: [`unbounded`] MPSC channels with
//! `recv_timeout`.
//!
//! Backed by `std::sync::mpsc`, whose `Sender`/`Receiver`/error types have
//! exactly the shape the runtime relies on (cloneable senders, per-sender
//! FIFO ordering, `RecvTimeoutError::{Timeout, Disconnected}`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError};

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    use super::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_senders_preserve_per_sender_fifo() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..100u32 {
                tx2.send(i).unwrap();
            }
        })
        .join()
        .unwrap();
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
