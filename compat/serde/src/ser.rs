//! Serialisation: lowering Rust values into the [`Value`] data model.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::time::Duration;

use crate::value::Value;

/// A type that can lower itself into the self-describing [`Value`] model.
///
/// Implemented by `#[derive(Serialize)]` for structs and (externally tagged)
/// enums, and manually for primitives and standard containers below.
pub trait Serialize {
    /// Lowers `self` into a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        (*self as i64).serialize_value()
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize_value(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
    };
}
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Maps and sets are encoded as sequences (of `[key, value]` pairs for maps),
/// which sidesteps JSON's string-only object keys and round-trips any
/// `Serialize` key type.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

/// Durations use serde's standard `{secs, nanos}` object encoding.
impl Serialize for Duration {
    fn serialize_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}
