//! The self-describing data model shared by `Serialize` and `Deserialize`.
//!
//! Serialisable types lower themselves to a [`Value`] tree; data formats
//! (in this workspace, the `serde_json` shim) render and parse that tree.

use std::fmt;

/// A self-describing serialised value.
///
/// This is the intermediate representation between Rust types and concrete
/// data formats. It maps one-to-one onto the JSON data model, with integers
/// kept in distinct signed/unsigned variants so that the full `u64`/`i64`
/// ranges round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`; also the encoding of `None` and of unit types.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (used for negative values).
    I64(i64),
    /// An unsigned integer (used for all non-negative integers).
    U64(u64),
    /// A floating-point number. Never NaN or infinite.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence of values (JSON array).
    Seq(Vec<Value>),
    /// An ordered list of key/value pairs (JSON object). Insertion order is
    /// preserved so that encodings are deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Views this value as a map, if it is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Views this value as a sequence, if it is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Views this value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short human-readable description of the value's kind, for errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Looks up `key` in a map's entry list (first match wins).
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// An error produced while deserialising a [`Value`] into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Creates a "wrong kind" error naming what was expected and found.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}
