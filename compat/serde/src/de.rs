//! Deserialisation: rebuilding Rust values from the [`Value`] data model.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::time::Duration;

use crate::value::{map_get, DeError, Value};

/// A type that can rebuild itself from the self-describing [`Value`] model.
///
/// Implemented by `#[derive(Deserialize)]` for structs and (externally
/// tagged) enums, and manually for primitives and standard containers below.
/// Unlike real serde there is no `'de` lifetime: this shim always produces
/// owned values, which is all the workspace needs.
pub trait Deserialize: Sized {
    /// Rebuilds a value of this type from a [`Value`] tree.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

/// Marker for deserialisable types without borrowed data.
///
/// In this shim every [`Deserialize`] type is owned, so the marker is a
/// blanket alias kept for source compatibility with real serde bounds.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

fn int_from_value(v: &Value) -> Result<i128, DeError> {
    match v {
        Value::I64(n) => Ok(i128::from(*n)),
        Value::U64(n) => Ok(i128::from(*n)),
        _ => Err(DeError::expected("integer", v)),
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = int_from_value(v)?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|x| x as f32)
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Deserialize for () {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_seq().ok_or_else(|| DeError::expected("sequence", v))?;
        items.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::deserialize_value(v).map(VecDeque::from)
    }
}

macro_rules! impl_de_tuple {
    ($n:expr, $($name:ident : $idx:tt),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_seq().ok_or_else(|| DeError::expected("sequence", v))?;
                if items.len() != $n {
                    return Err(DeError::new(format!(
                        "expected {}-tuple, found sequence of {}", $n, items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    };
}
impl_de_tuple!(2, A: 0, B: 1);
impl_de_tuple!(3, A: 0, B: 1, C: 2);
impl_de_tuple!(4, A: 0, B: 1, C: 2, D: 3);

fn pairs_from_value(v: &Value) -> Result<Vec<(&Value, &Value)>, DeError> {
    let items = v
        .as_seq()
        .ok_or_else(|| DeError::expected("sequence of pairs", v))?;
    items
        .iter()
        .map(|item| {
            let pair = item
                .as_seq()
                .ok_or_else(|| DeError::expected("[key, value] pair", item))?;
            if pair.len() != 2 {
                return Err(DeError::new("expected [key, value] pair"));
            }
            Ok((&pair[0], &pair[1]))
        })
        .collect()
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        pairs_from_value(v)?
            .into_iter()
            .map(|(k, val)| Ok((K::deserialize_value(k)?, V::deserialize_value(val)?)))
            .collect()
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        pairs_from_value(v)?
            .into_iter()
            .map(|(k, val)| Ok((K::deserialize_value(k)?, V::deserialize_value(val)?)))
            .collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_seq().ok_or_else(|| DeError::expected("sequence", v))?;
        items.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_seq().ok_or_else(|| DeError::expected("sequence", v))?;
        items.iter().map(T::deserialize_value).collect()
    }
}

impl Deserialize for Duration {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::expected("duration map", v))?;
        let secs = map_get(entries, "secs")
            .ok_or_else(|| DeError::new("duration missing `secs`"))
            .and_then(u64::deserialize_value)?;
        let nanos = map_get(entries, "nanos")
            .ok_or_else(|| DeError::new("duration missing `nanos`"))
            .and_then(u32::deserialize_value)?;
        Ok(Duration::new(secs, nanos))
    }
}
