//! In-tree compatibility shim for the subset of the `serde` API that the
//! WBAM workspace uses.
//!
//! The workspace builds hermetically (no network, no crates.io); this crate
//! provides the `Serialize` / `Deserialize` traits, the `DeserializeOwned`
//! marker and the `#[derive(Serialize, Deserialize)]` macros against a small
//! self-describing [`value::Value`] data model. `serde_json` (the sibling
//! shim) converts that model to and from JSON text.
//!
//! The surface is intentionally small: no zero-copy deserialisation, no
//! custom field attributes, externally tagged enums only. That covers every
//! message, configuration and statistics type in the workspace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod value;

pub mod de;
pub mod ser;

pub use de::Deserialize;
pub use ser::Serialize;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
